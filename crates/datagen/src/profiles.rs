//! The six evaluation-dataset profiles (paper Table 3).

use crate::{ColumnModel, TableSpec};

/// Shape parameters of one evaluation dataset, mirroring Table 3 of the
/// paper: width, length, change-history length, and change mix.
///
/// The column *contents* are synthesized (see crate docs and DESIGN.md);
/// the FD landscape per dataset is controlled by a deterministic column
/// mix derived from the profile seed: one key-ish column, Zipf
/// categoricals of varying cardinality, derived hierarchy columns
/// (zip→city style), and noisily correlated columns that churn.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper ("cpu", "disease", …).
    pub name: &'static str,
    /// Column count (#Columns in Table 3).
    pub columns: usize,
    /// Initial row count (#Rows in Table 3; `artist` is scaled — see
    /// [`DatasetProfile::artist_full`]).
    pub initial_rows: usize,
    /// Change-history length (#Changes in Table 3).
    pub changes: usize,
    /// Insert share of the change mix, percent.
    pub insert_pct: f64,
    /// Delete share, percent.
    pub delete_pct: f64,
    /// Update share, percent.
    pub update_pct: f64,
    /// Maximum attributes an update regenerates (real updates touch few).
    pub update_columns: usize,
    /// RNG seed; every run of a profile regenerates identical data.
    pub seed: u64,
    /// Number of *dirty bursts* injected into the change history: short
    /// stretches of operations whose correlated leaf columns are
    /// scrambled (a faulty import, a misbehaving writer). Bursts are
    /// what give real histories their spiky per-batch cost profile
    /// (paper Figure 5): most batches change no FDs, a burst batch
    /// invalidates several at once. `0` disables.
    pub bursts: usize,
    /// Length of each burst, in change operations.
    pub burst_len: usize,
}

impl DatasetProfile {
    /// The deterministic column mix for this profile.
    ///
    /// Real relational data keeps its minimal-FD count small — Table 3
    /// reports 347 FDs for the 83-column `actor` — because its columns
    /// are *hierarchically nested*, not independent. Mutually
    /// independent columns (even low-cardinality ones, even exact
    /// functions of a shared root with independent group assignments)
    /// jointly refine towards a key, and the minimal FDs of such data
    /// are the minimal separating subsets: combinatorially many.
    ///
    /// The mix therefore builds **chains of nested coarsenings**: one
    /// surrogate key, one categorical root, and a few chains in which
    /// every column is an exact coarsening of its chain predecessor
    /// (zip → city → state → country). Within a chain, any column
    /// subset's joint partition equals its finest member's, so combos
    /// never sharpen — the valid FDs are essentially the chain edges
    /// plus key→everything, O(columns) of them. A handful of noisily
    /// [`Correlated`](ColumnModel::Correlated) leaf columns provide the
    /// violations that appear and disappear under changes — the churn
    /// DynFD exists to track.
    pub fn table_spec(&self) -> TableSpec {
        assert!(self.columns >= 1);
        let mut cols: Vec<ColumnModel> = Vec::with_capacity(self.columns);
        // Splitmix-ish stream for per-column parameters.
        let mut state = self.seed ^ 0x9E3779B97F4A7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 17
        };

        let root_card = (self.initial_rows / 8).clamp(6, 60);
        // Wide tables use a single coarsening chain: with k chains the
        // minimal FDs live on the k-dimensional coarse/fine boundary
        // surface of the chain product, which grows like (chain length)^k
        // — only k=1 keeps an 83-column table at the paper's order of
        // a few hundred to a few thousand minimal FDs.
        let n_chains = if self.columns > 20 { 1 } else { 2 };
        // Roughly one in five columns is a noisy leaf.
        let noisy_leaves = (self.columns / 5).clamp(1, 8);

        // col 0: key; col 1: the root everything descends from.
        cols.push(ColumnModel::Key);
        if self.columns == 1 {
            return TableSpec::new(
                self.name,
                vec![ColumnModel::Categorical {
                    cardinality: root_card,
                    skew: 1.0,
                }],
            );
        }
        cols.push(ColumnModel::Categorical {
            cardinality: root_card,
            skew: 1.0,
        });

        // Chain state: (tail column index, tail partition size).
        let mut chains: Vec<(usize, usize)> = vec![(1, root_card); n_chains];
        let mut leaves_left = noisy_leaves;
        for i in 2..self.columns {
            let remaining = self.columns - i;
            // Sprinkle the noisy leaves across the tail of the layout.
            let make_leaf = leaves_left > 0
                && (remaining <= leaves_left || next() % (self.columns as u64 / 5 + 1) == 0);
            if make_leaf {
                leaves_left -= 1;
                let (src, src_card) = chains[(next() as usize) % chains.len()];
                cols.push(ColumnModel::Correlated {
                    source: src,
                    groups: src_card.max(2),
                    noise: 0.005 + (next() % 4) as f64 / 100.0,
                });
                continue;
            }
            // Extend the currently finest chain with a coarsening step.
            let c = (next() as usize) % chains.len();
            let (src, src_card) = chains[c];
            let groups = (src_card * 3 / 4).max(2);
            cols.push(ColumnModel::Derived {
                source: src,
                groups,
            });
            chains[c] = (i, groups);
        }
        TableSpec::new(self.name, cols)
    }

    /// The `artist` profile at its original 1,122,887 rows (Table 3).
    /// The default [`PAPER_PROFILES`] entry scales it to 120,000 rows so
    /// the full harness stays runnable; pass this one for a faithful —
    /// and slow — reproduction.
    pub fn artist_full() -> Self {
        DatasetProfile {
            initial_rows: 1_122_887,
            ..ARTIST
        }
    }

    /// A copy rescaled so the *initial* table holds `rows` rows, with
    /// the change history stretched by the same factor. The scale
    /// benchmark uses this to push every paper shape to the same
    /// working-set size regardless of the profile's native length;
    /// callers that only need a change-stream prefix (the fields are
    /// public) should cap `changes` after scaling rather than generate
    /// tens of millions of unused operations.
    pub fn scaled_to_rows(&self, rows: usize) -> Self {
        self.scaled(rows as f64 / self.initial_rows as f64)
    }

    /// A copy with rows/changes scaled by `factor` (used by the harness's
    /// `--scale` flag to shrink every experiment proportionally).
    pub fn scaled(&self, factor: f64) -> Self {
        // Burst lengths scale with the history so the *dirty fraction*
        // of the change stream — which drives per-batch cost far more
        // than the stream's length — stays what the full-size profile
        // specifies.
        let burst_len = if self.burst_len == 0 {
            0
        } else {
            ((self.burst_len as f64 * factor) as usize).max(4)
        };
        DatasetProfile {
            initial_rows: ((self.initial_rows as f64 * factor) as usize).max(8),
            changes: ((self.changes as f64 * factor) as usize).max(10),
            burst_len,
            ..self.clone()
        }
    }
}

const CPU: DatasetProfile = DatasetProfile {
    name: "cpu",
    columns: 15,
    initial_rows: 62,
    changes: 1_463,
    insert_pct: 4.3,
    delete_pct: 0.2,
    update_pct: 95.5,
    update_columns: 3,
    seed: 0xC9D1,
    bursts: 2,
    burst_len: 40,
};

const DISEASE: DatasetProfile = DatasetProfile {
    name: "disease",
    columns: 13,
    initial_rows: 1_600,
    changes: 361_828,
    insert_pct: 1.0,
    delete_pct: 0.6,
    update_pct: 98.4,
    update_columns: 2,
    seed: 0xD15E,
    bursts: 8,
    burst_len: 150,
};

const ACTOR: DatasetProfile = DatasetProfile {
    name: "actor",
    columns: 83,
    initial_rows: 3_655,
    changes: 5_647,
    insert_pct: 64.9,
    delete_pct: 0.5,
    update_pct: 34.6,
    update_columns: 4,
    seed: 0xAC70,
    bursts: 3,
    burst_len: 80,
};

const SINGLE: DatasetProfile = DatasetProfile {
    name: "single",
    columns: 26,
    initial_rows: 12_451,
    changes: 12_614,
    insert_pct: 96.1,
    delete_pct: 0.0,
    update_pct: 3.9,
    update_columns: 3,
    seed: 0x51E6,
    bursts: 6,
    burst_len: 120,
};

/// `artist` scaled to 120k initial rows (10.7 % of the original size);
/// see [`DatasetProfile::artist_full`] and DESIGN.md.
const ARTIST: DatasetProfile = DatasetProfile {
    name: "artist",
    columns: 18,
    initial_rows: 120_000,
    changes: 25_470,
    insert_pct: 61.8,
    delete_pct: 3.7,
    update_pct: 34.5,
    update_columns: 3,
    seed: 0xA271,
    bursts: 5,
    burst_len: 200,
};

const CLAIMS: DatasetProfile = DatasetProfile {
    name: "claims",
    columns: 8,
    initial_rows: 1_054,
    changes: 202_913,
    insert_pct: 100.0,
    delete_pct: 0.0,
    update_pct: 0.0,
    update_columns: 1,
    seed: 0xC1A1,
    bursts: 4,
    burst_len: 150,
};

/// The six evaluation datasets of Table 3, in the paper's order.
pub const PAPER_PROFILES: &[DatasetProfile] = &[CPU, DISEASE, ACTOR, SINGLE, ARTIST, CLAIMS];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_shapes() {
        let by_name = |n: &str| PAPER_PROFILES.iter().find(|p| p.name == n).unwrap();
        assert_eq!(by_name("cpu").columns, 15);
        assert_eq!(by_name("cpu").initial_rows, 62);
        assert_eq!(by_name("disease").changes, 361_828);
        assert_eq!(by_name("actor").columns, 83);
        assert_eq!(by_name("single").initial_rows, 12_451);
        assert_eq!(by_name("claims").insert_pct, 100.0);
        assert_eq!(DatasetProfile::artist_full().initial_rows, 1_122_887);
    }

    #[test]
    fn change_mixes_sum_to_100() {
        for p in PAPER_PROFILES {
            let sum = p.insert_pct + p.delete_pct + p.update_pct;
            assert!((sum - 100.0).abs() < 0.01, "{}: {sum}", p.name);
        }
    }

    #[test]
    fn specs_are_valid_and_wide_enough() {
        for p in PAPER_PROFILES {
            let spec = p.table_spec();
            assert_eq!(spec.arity(), p.columns, "{}", p.name);
        }
    }

    #[test]
    fn scaling_shrinks_rows_and_changes() {
        let p = DatasetProfile::artist_full().scaled(0.01);
        assert_eq!(p.initial_rows, 11_228);
        assert_eq!(p.changes, 254);
        assert_eq!(p.columns, 18, "width unchanged");
        // Bursts keep their share of the stream: 200 ops at 25,470
        // changes → 4 ops (the floor) at 254.
        assert_eq!(p.burst_len, 4);
        assert_eq!(p.bursts, 5, "burst count unchanged");
    }
}
