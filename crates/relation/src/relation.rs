//! The incrementally maintained relation representation.
//!
//! # Columnar arena layout
//!
//! Records live in a *columnar arena*: one contiguous `Vec<ValueId>` per
//! attribute, indexed by **slot**. A slot is a `u32` arena position; the
//! record occupying it is named by `slot_rids[slot]`, and the dense
//! reverse map `slot_of[rid]` resolves a surrogate id to its slot in
//! O(1) (record ids are assigned monotonically and never reused, so a
//! flat vector indexed by the raw id replaces any hash index). Freed
//! slots go onto a LIFO free-list and are reused by later inserts; a
//! per-slot generation counter is bumped on every free so stale slot
//! references are detectable under churn (the `slot-churn` fuzz profile
//! exercises exactly this).
//!
//! A validation job therefore streams `columns[attr]` — a flat `u32`
//! array — instead of dereferencing a boxed code slice per record, which
//! is what makes validation memory-bandwidth-shaped rather than
//! pointer-chase-shaped at paper scale (see DESIGN.md §6f).
//!
//! The free-list discipline is deterministic: reverse-replaying an
//! [`UndoLog`] restores not just the logical record set but the exact
//! physical slot layout, free-list order, and generation counters, so a
//! rolled-back batch leaves no trace even at the arena level.

use crate::batch::{AppliedBatch, Batch, ChangeOp};
use crate::dictionary::{Dictionary, ValueId};
use crate::pli::Pli;
use dynfd_common::{DynError, RecordId, Result, Schema};
use std::collections::HashSet;

/// Sentinel in `slot_of` for "this record id has no slot" (never
/// assigned, deleted, or rolled back).
pub const NO_SLOT: u32 = u32::MAX;

/// Sentinel in `slot_rids` for a free slot.
pub const DEAD_RID: RecordId = RecordId(u64::MAX);

/// How the relation treats null values. Nulls are modelled as empty
/// strings and compare equal to each other, the convention of FD
/// discovery tooling (see `Dictionary`'s tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NullPolicy {
    /// Nulls are ordinary values that agree with each other. Default;
    /// matches the paper's setting and every existing dataset profile.
    #[default]
    AllowAll,
    /// Any batch carrying a null value is rejected with
    /// [`DynError::NullValue`] before anything is applied.
    RejectNulls,
}

/// A borrowed view of one record's value codes inside the columnar
/// arena. Indexing (`row[attr]`) reads `columns[attr][slot]`; comparison
/// and ordering are lexicographic over the code vector, matching the
/// semantics the former row-major `&[ValueId]` slices had.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    columns: &'a [Vec<ValueId>],
    slot: usize,
}

impl<'a> RowRef<'a> {
    /// The value code of attribute `attr`.
    #[inline]
    pub fn get(&self, attr: usize) -> ValueId {
        self.columns[attr][self.slot]
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the relation has zero columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The arena slot this view points at.
    pub fn slot(&self) -> u32 {
        self.slot as u32
    }

    /// Iterates the value codes in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = ValueId> + 'a {
        let slot = self.slot;
        self.columns.iter().map(move |col| col[slot])
    }

    /// The codes as an owned vector (cold paths and tests).
    pub fn to_vec(&self) -> Vec<ValueId> {
        self.iter().collect()
    }
}

impl std::ops::Index<usize> for RowRef<'_> {
    type Output = ValueId;
    #[inline]
    fn index(&self, attr: usize) -> &ValueId {
        &self.columns[attr][self.slot]
    }
}

impl PartialEq for RowRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for RowRef<'_> {}

impl PartialOrd for RowRef<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RowRef<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.iter().cmp(other.iter())
    }
}

impl std::fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// One reversible mutation recorded while applying a batch.
#[derive(Clone, Debug)]
enum UndoOp {
    /// A record this batch inserted; undone by deleting it again.
    Inserted(RecordId),
    /// A record this batch deleted, with its compressed form; undone by
    /// restoring it into its slot and every PLI.
    Removed(RecordId, Box<[ValueId]>),
}

/// Undo log for one batch application, produced by
/// [`DynamicRelation::apply_batch_logged`].
///
/// Replaying the log in reverse ([`DynamicRelation::rollback`]) returns
/// the relation to a state *physically* identical to the pre-batch
/// snapshot: columns, slot assignments, free-list order, generation
/// counters, PLIs, dictionaries (including codes assigned during the
/// batch, which are truncated away), and the surrogate-id counter.
#[derive(Clone, Debug)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
    next_id_before: RecordId,
    dict_lens_before: Vec<usize>,
    /// Arena length before the batch: slots at or past this index were
    /// grown by the batch and are truncated away (in reverse-allocation
    /// order) rather than freed, restoring the exact arena extent.
    arena_len_before: usize,
}

impl UndoLog {
    /// Number of reversible mutations recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch performed no mutation.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A relation instance maintained under inserts, updates, and deletes.
///
/// This bundles every data structure of paper Section 3.1, re-shaped
/// columnar (module docs):
///
/// * per-column [`Dictionary`]s (value → code),
/// * per-column [`Pli`]s with their built-in inverted index
///   (code → cluster of arena slots, rid-sorted),
/// * the **columnar arena** of dictionary-compressed records
///   (one `Vec<ValueId>` per attribute, slot-indexed) with its
///   free-list/generation bookkeeping,
/// * the monotonically increasing surrogate-id counter.
///
/// All structures are updated *incrementally* per change — applying a
/// batch never re-reads previously ingested data, mirroring the paper's
/// requirement that DynFD must not perform reads against the database it
/// monitors.
///
/// Equality (`==`) is *logical*: two relations are equal when they hold
/// the same schema, policy, id counter, dictionaries, and the same
/// record content per surrogate id — regardless of how churn arranged
/// the records in their arenas. (PLIs are fully determined by the
/// records, so they need no separate comparison.)
#[derive(Clone, Debug)]
pub struct DynamicRelation {
    schema: Schema,
    dictionaries: Vec<Dictionary>,
    plis: Vec<Pli>,
    /// The columnar arena: `columns[attr][slot]` is the value code of
    /// attribute `attr` in the record occupying `slot`.
    columns: Vec<Vec<ValueId>>,
    /// Slot → occupying record id ([`DEAD_RID`] for free slots).
    slot_rids: Vec<RecordId>,
    /// Record id (raw) → slot ([`NO_SLOT`] when not live). Dense: ids
    /// are assigned sequentially from 0.
    slot_of: Vec<u32>,
    /// LIFO free-list of reusable slots.
    free: Vec<u32>,
    /// Per-slot generation, bumped each time the slot is freed.
    generations: Vec<u32>,
    /// Number of live records.
    live: usize,
    next_id: RecordId,
    null_policy: NullPolicy,
}

impl PartialEq for DynamicRelation {
    fn eq(&self, other: &Self) -> bool {
        if self.schema != other.schema
            || self.null_policy != other.null_policy
            || self.next_id != other.next_id
            || self.dictionaries != other.dictionaries
            || self.live != other.live
        {
            return false;
        }
        // Same record content per id, independent of slot layout.
        for (slot, &rid) in self.slot_rids.iter().enumerate() {
            if rid == DEAD_RID {
                continue;
            }
            let Some(their_slot) = other.slot_of(rid) else {
                return false;
            };
            let theirs = their_slot as usize;
            if self
                .columns
                .iter()
                .zip(&other.columns)
                .any(|(a, b)| a[slot] != b[theirs])
            {
                return false;
            }
        }
        true
    }
}

impl DynamicRelation {
    /// Creates an empty relation for `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        DynamicRelation {
            schema,
            dictionaries: (0..arity).map(|_| Dictionary::new()).collect(),
            plis: (0..arity).map(|_| Pli::new()).collect(),
            columns: (0..arity).map(|_| Vec::new()).collect(),
            slot_rids: Vec::new(),
            slot_of: Vec::new(),
            free: Vec::new(),
            generations: Vec::new(),
            live: 0,
            next_id: RecordId(0),
            null_policy: NullPolicy::default(),
        }
    }

    /// The active null policy.
    pub fn null_policy(&self) -> NullPolicy {
        self.null_policy
    }

    /// Changes the null policy. Only future batches are checked; records
    /// already ingested are never retroactively rejected.
    pub fn set_null_policy(&mut self, policy: NullPolicy) {
        self.null_policy = policy;
    }

    /// Overrides the distinct-value budget of column `attr`'s dictionary
    /// (see [`Dictionary::set_capacity`]).
    pub fn set_dictionary_capacity(&mut self, attr: usize, capacity: usize) {
        self.dictionaries[attr].set_capacity(capacity);
    }

    /// Creates a relation and bulk-loads `rows` (the "initial tuples" of
    /// the paper's setting). Initial records receive ids `0..rows.len()`.
    pub fn from_rows<S: AsRef<str>>(schema: Schema, rows: &[Vec<S>]) -> Result<Self> {
        let mut rel = DynamicRelation::new(schema);
        for row in rows {
            rel.insert_row(row)?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the relation currently holds no records.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The next surrogate id that will be assigned. Exposed because the
    /// id assignment is part of the public contract: ids are handed out
    /// in arrival order starting from 0, which lets change-stream
    /// generators refer to future records deterministically.
    pub fn next_id(&self) -> RecordId {
        self.next_id
    }

    /// The PLI of column `attr`.
    pub fn pli(&self, attr: usize) -> &Pli {
        &self.plis[attr]
    }

    /// The dictionary of column `attr`.
    pub fn dictionary(&self, attr: usize) -> &Dictionary {
        &self.dictionaries[attr]
    }

    /// The full value-code column of attribute `attr`, indexed by slot.
    /// Free slots hold stale codes; only index it with slots obtained
    /// from a PLI cluster or [`DynamicRelation::slot_of`].
    #[inline]
    pub fn column(&self, attr: usize) -> &[ValueId] {
        &self.columns[attr]
    }

    /// All columns, for validators that stream several attributes.
    #[inline]
    pub fn columns(&self) -> &[Vec<ValueId>] {
        &self.columns
    }

    /// Slot → record id table (free slots hold a sentinel; pair it with
    /// slots from PLI clusters, which only reference live slots).
    #[inline]
    pub fn slot_rids(&self) -> &[RecordId] {
        &self.slot_rids
    }

    /// The record id occupying `slot`.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if the slot is free.
    #[inline]
    pub fn rid_at_slot(&self, slot: u32) -> RecordId {
        let rid = self.slot_rids[slot as usize];
        debug_assert_ne!(rid, DEAD_RID, "slot {slot} is free");
        rid
    }

    /// The arena slot of a live record.
    #[inline]
    pub fn slot_of(&self, rid: RecordId) -> Option<u32> {
        match self.slot_of.get(rid.raw() as usize) {
            Some(&slot) if slot != NO_SLOT => Some(slot),
            _ => None,
        }
    }

    /// Total arena extent in slots (live + free).
    pub fn arena_len(&self) -> usize {
        self.slot_rids.len()
    }

    /// Approximate resident bytes of the whole relation: dictionaries,
    /// PLIs, the columnar arena, and the slot bookkeeping vectors. A
    /// monotone-in-footprint estimate for quota accounting (it grows
    /// when the structures grow and shrinks when they are truncated),
    /// not an exact allocator number.
    pub fn approx_bytes(&self) -> usize {
        let dict: usize = self.dictionaries.iter().map(Dictionary::approx_bytes).sum();
        let plis: usize = self.plis.iter().map(Pli::approx_bytes).sum();
        let arena = self.columns.len() * self.slot_rids.len() * 4;
        let slots = self.slot_rids.len() * 8 // RecordId
            + self.slot_of.len() * 4
            + self.free.len() * 4
            + self.generations.len() * 4;
        128 + dict + plis + arena + slots
    }

    /// The free-list, most recently freed slot last (LIFO order).
    pub fn free_slots(&self) -> &[u32] {
        &self.free
    }

    /// Per-slot generation counters (bumped on each free).
    pub fn generations(&self) -> &[u32] {
        &self.generations
    }

    /// The compressed record for `rid`, if live, as a columnar view.
    #[inline]
    pub fn compressed(&self, rid: RecordId) -> Option<RowRef<'_>> {
        self.slot_of(rid).map(|slot| RowRef {
            columns: &self.columns,
            slot: slot as usize,
        })
    }

    /// The row view at a known-live arena slot.
    #[inline]
    pub fn row_at_slot(&self, slot: u32) -> RowRef<'_> {
        debug_assert_ne!(self.slot_rids[slot as usize], DEAD_RID);
        RowRef {
            columns: &self.columns,
            slot: slot as usize,
        }
    }

    /// The packed two-attribute value signature of a live record: the
    /// value codes of `a` and `b` packed into one `u64` (`a`'s code in
    /// the high half). This is the cluster-signature scheme of the
    /// validator's packed group tables and the key scheme of the
    /// [`PliCache`](crate::PliCache): two records agree on `{a, b}` iff
    /// their signatures are equal (codes are exact, not hashed).
    pub fn packed_sig(&self, rid: RecordId, a: usize, b: usize) -> Option<u64> {
        let slot = self.slot_of(rid)? as usize;
        Some((self.columns[a][slot] as u64) << 32 | self.columns[b][slot] as u64)
    }

    /// Decodes a live record back into its string values.
    pub fn materialize(&self, rid: RecordId) -> Option<Vec<String>> {
        let slot = self.slot_of(rid)? as usize;
        Some(
            self.columns
                .iter()
                .enumerate()
                .map(|(a, col)| self.dictionaries[a].decode(col[slot]).to_string())
                .collect(),
        )
    }

    /// Iterates the ids of all live records in slot (unspecified) order.
    pub fn record_ids(&self) -> impl Iterator<Item = RecordId> + '_ {
        self.slot_rids.iter().copied().filter(|&r| r != DEAD_RID)
    }

    /// Iterates `(id, record view)` pairs in slot (unspecified) order.
    pub fn records(&self) -> impl Iterator<Item = (RecordId, RowRef<'_>)> {
        self.slot_rids
            .iter()
            .enumerate()
            .filter(|(_, &r)| r != DEAD_RID)
            .map(|(slot, &rid)| {
                (
                    rid,
                    RowRef {
                        columns: &self.columns,
                        slot,
                    },
                )
            })
    }

    /// Pops a free slot or grows the arena by one slot.
    fn allocate_slot(&mut self) -> u32 {
        if let Some(slot) = self.free.pop() {
            return slot;
        }
        let slot = self.slot_rids.len() as u32;
        self.slot_rids.push(DEAD_RID);
        self.generations.push(0);
        for col in &mut self.columns {
            col.push(0);
        }
        slot
    }

    /// Inserts one row, updating dictionaries, PLIs, and the arena, and
    /// returns the assigned surrogate id.
    pub fn insert_row<S: AsRef<str>>(&mut self, row: &[S]) -> Result<RecordId> {
        self.check_row(row)?;
        let rid = self.next_id;
        self.next_id = self.next_id.next();
        let slot = self.allocate_slot();
        self.slot_rids[slot as usize] = rid;
        for (attr, value) in row.iter().enumerate() {
            let code = self.dictionaries[attr].encode(value.as_ref());
            self.columns[attr][slot as usize] = code;
            self.plis[attr].insert(code, slot, rid, &self.slot_rids);
        }
        let idx = rid.raw() as usize;
        if self.slot_of.len() <= idx {
            self.slot_of.resize(idx + 1, NO_SLOT);
        }
        self.slot_of[idx] = slot;
        self.live += 1;
        Ok(rid)
    }

    /// Checks one row against the schema arity, the null policy, and the
    /// per-column dictionary capacities, all before any mutation — a row
    /// that passes cannot fail to insert.
    fn check_row<S: AsRef<str>>(&self, row: &[S]) -> Result<()> {
        if row.len() != self.arity() {
            return Err(DynError::ArityMismatch {
                expected: self.arity(),
                actual: row.len(),
            });
        }
        for (attr, value) in row.iter().enumerate() {
            let value = value.as_ref();
            if self.null_policy == NullPolicy::RejectNulls && value.is_empty() {
                return Err(DynError::NullValue { attr });
            }
            if self.dictionaries[attr].would_overflow(value) {
                return Err(DynError::DictionaryOverflow {
                    attr,
                    capacity: self.dictionaries[attr].capacity(),
                });
            }
        }
        Ok(())
    }

    /// Deletes the record `rid` from all structures: its value codes
    /// locate the PLI clusters to shrink, then the slot is freed (LIFO)
    /// and its generation bumped.
    pub fn delete_record(&mut self, rid: RecordId) -> Result<()> {
        let slot = self.slot_of(rid).ok_or(DynError::UnknownRecord(rid))?;
        // PLIs first: cluster removal binary-searches by rid through
        // `slot_rids`, which must still map this slot.
        for attr in 0..self.columns.len() {
            let code = self.columns[attr][slot as usize];
            let removed = self.plis[attr].remove(code, slot, rid, &self.slot_rids);
            debug_assert!(removed, "record {rid} missing from PLI of column {attr}");
        }
        self.slot_of[rid.raw() as usize] = NO_SLOT;
        self.slot_rids[slot as usize] = DEAD_RID;
        // Dead slots hold code 0 in every column. This canonical form
        // makes the physical arena a pure function of the operation
        // history, so snapshot round-trips compare bit-identical.
        for column in &mut self.columns {
            column[slot as usize] = 0;
        }
        self.generations[slot as usize] += 1;
        self.free.push(slot);
        self.live -= 1;
        Ok(())
    }

    /// Whether `rid` is live.
    pub fn contains(&self, rid: RecordId) -> bool {
        self.slot_of(rid).is_some()
    }

    /// Applies a batch of change operations (Step 1 of the paper's
    /// processing pipeline, Figure 1).
    ///
    /// Updates are normalized to delete + insert. Deletes of
    /// pre-existing records are applied *before* any insert, so that the
    /// old and new version of an updated tuple never coexist — the paper
    /// notes that such near-duplicates would transiently invalidate many
    /// (key-like) dependencies only to revalidate them moments later.
    /// Deletes that target records inserted by this same batch are
    /// applied at the end.
    ///
    /// On error (unknown record id, duplicate reference, arity mismatch,
    /// null-policy violation, dictionary overflow) the relation is left
    /// unchanged: the batch is validated before any mutation.
    pub fn apply_batch(&mut self, batch: &Batch) -> Result<AppliedBatch> {
        self.apply_batch_logged(batch).map(|(applied, _)| applied)
    }

    /// Like [`DynamicRelation::apply_batch`], but additionally returns
    /// the [`UndoLog`] of every mutation performed, enabling the caller
    /// to [`DynamicRelation::rollback`] the batch if *downstream*
    /// maintenance (cover updates, violation search) fails after the
    /// relation itself was updated successfully.
    pub fn apply_batch_logged(&mut self, batch: &Batch) -> Result<(AppliedBatch, UndoLog)> {
        self.validate_batch(batch)?;
        let mut undo = UndoLog {
            ops: Vec::new(),
            next_id_before: self.next_id,
            dict_lens_before: self.dictionaries.iter().map(Dictionary::len).collect(),
            arena_len_before: self.slot_rids.len(),
        };

        let mut deferred_deletes: Vec<RecordId> = Vec::new();
        let mut applied = AppliedBatch {
            update_only: !batch.is_empty()
                && batch
                    .ops()
                    .iter()
                    .all(|op| matches!(op, ChangeOp::Update(..))),
            ..AppliedBatch::default()
        };

        // Phase 1: deletes of pre-existing records (update-deletes
        // included). Updates additionally record which attributes their
        // new version actually changes — the input to update pruning.
        for op in batch.ops() {
            let rid = match op {
                ChangeOp::Delete(rid) | ChangeOp::Update(rid, _) => *rid,
                ChangeOp::Insert(_) => continue,
            };
            if self.contains(rid) {
                if let ChangeOp::Update(_, new_row) = op {
                    if applied.update_only {
                        // Invariant: guarded by `self.contains(rid)` above.
                        let old = self.materialize(rid).expect("live record");
                        for (attr, (o, n)) in old.iter().zip(new_row.iter()).enumerate() {
                            if o != n {
                                applied.touched_attrs.insert(attr);
                            }
                        }
                    }
                }
                let codes = self.row_codes_boxed(rid).expect("checked live above");
                self.delete_record(rid)?;
                undo.ops.push(UndoOp::Removed(rid, codes));
                applied.deleted.push(rid);
            } else {
                // References a record created later in this batch. Such
                // an update's old version is not a pre-batch record, so
                // the touched-attribute analysis does not cover it.
                applied.update_only = false;
                deferred_deletes.push(rid);
            }
        }

        // Phase 2: inserts (update-inserts included).
        for op in batch.ops() {
            let row = match op {
                ChangeOp::Insert(row) | ChangeOp::Update(_, row) => row,
                ChangeOp::Delete(_) => continue,
            };
            let rid = self.insert_row(row)?;
            undo.ops.push(UndoOp::Inserted(rid));
            applied.first_new_id.get_or_insert(rid);
            applied.inserted.push(rid);
        }

        // Phase 3: deletes that referenced same-batch inserts.
        for rid in deferred_deletes {
            let codes = self
                .row_codes_boxed(rid)
                .expect("validated same-batch insert");
            self.delete_record(rid)?;
            undo.ops.push(UndoOp::Removed(rid, codes));
            applied.inserted.retain(|&r| r != rid);
        }

        applied.inserted_slots = applied
            .inserted
            .iter()
            .map(|&rid| self.slot_of(rid).expect("surviving insert is live"))
            .collect();

        Ok((applied, undo))
    }

    /// The record's codes as an owned boxed slice (undo-log payloads).
    fn row_codes_boxed(&self, rid: RecordId) -> Option<Box<[ValueId]>> {
        self.compressed(rid)
            .map(|row| row.to_vec().into_boxed_slice())
    }

    /// Reverse-replays the undo log of a batch, restoring the relation to
    /// a state structurally equal (`==`) to — and physically identical
    /// with — the pre-batch snapshot.
    ///
    /// Dictionary codes assigned while applying the batch are exactly the
    /// tail `values[len..]` of each dictionary (dictionaries are
    /// append-only), so truncating to the recorded lengths removes them;
    /// this is sound because every record referencing those codes was
    /// inserted by the same batch and is removed first. Slot bookkeeping
    /// reverses exactly because the free-list is LIFO: undoing an insert
    /// returns (or truncates) the slot the insert took, undoing a delete
    /// re-occupies the slot the delete freed.
    pub fn rollback(&mut self, undo: UndoLog) {
        for op in undo.ops.into_iter().rev() {
            match op {
                UndoOp::Inserted(rid) => {
                    let slot = self
                        .slot_of(rid)
                        .expect("undo log names a record this batch inserted");
                    for attr in 0..self.columns.len() {
                        let code = self.columns[attr][slot as usize];
                        let removed = self.plis[attr].remove(code, slot, rid, &self.slot_rids);
                        debug_assert!(removed, "rollback: {rid} missing from PLI {attr}");
                    }
                    self.slot_of[rid.raw() as usize] = NO_SLOT;
                    self.live -= 1;
                    if slot as usize >= undo.arena_len_before {
                        // The batch grew the arena for this slot; grown
                        // slots are undone newest-first, so it is the
                        // current tail — shrink instead of freeing.
                        debug_assert_eq!(slot as usize, self.slot_rids.len() - 1);
                        self.slot_rids.pop();
                        self.generations.pop();
                        for col in &mut self.columns {
                            col.pop();
                        }
                    } else {
                        // The insert popped this slot off the free-list;
                        // push it back. No generation bump: the insert
                        // did not bump it either. Re-zero the columns to
                        // keep the canonical dead-slot form.
                        self.slot_rids[slot as usize] = DEAD_RID;
                        for col in &mut self.columns {
                            col[slot as usize] = 0;
                        }
                        self.free.push(slot);
                    }
                }
                UndoOp::Removed(rid, codes) => {
                    let slot = self
                        .free
                        .pop()
                        .expect("delete pushed the slot this undo re-occupies");
                    self.slot_rids[slot as usize] = rid;
                    self.generations[slot as usize] -= 1;
                    for (attr, &code) in codes.iter().enumerate() {
                        self.columns[attr][slot as usize] = code;
                        self.plis[attr].restore(code, slot, rid, &self.slot_rids);
                    }
                    let idx = rid.raw() as usize;
                    self.slot_of[idx] = slot;
                    self.live += 1;
                }
            }
        }
        for (dict, &len) in self.dictionaries.iter_mut().zip(&undo.dict_lens_before) {
            dict.truncate(len);
        }
        self.slot_of.truncate(undo.next_id_before.raw() as usize);
        self.next_id = undo.next_id_before;
    }

    /// Checks a batch for structural problems without mutating anything.
    /// Everything [`check_row`](DynamicRelation::check_row) rejects is
    /// rejected here too, so a batch that validates cannot fail while it
    /// is being applied.
    fn validate_batch(&self, batch: &Batch) -> Result<()> {
        // Simulate id assignment to accept deletes of same-batch inserts.
        let mut pending_inserts = 0u64;
        let mut dead: Vec<RecordId> = Vec::new();
        for op in batch.ops() {
            match op {
                ChangeOp::Insert(row) => {
                    self.check_row(row)?;
                    pending_inserts += 1;
                }
                ChangeOp::Update(rid, row) => {
                    self.check_row(row)?;
                    self.check_live(*rid, pending_inserts, &dead)?;
                    dead.push(*rid);
                    pending_inserts += 1;
                }
                ChangeOp::Delete(rid) => {
                    self.check_live(*rid, pending_inserts, &dead)?;
                    dead.push(*rid);
                }
            }
        }
        self.check_dictionary_headroom(batch)
    }

    /// Rejects batches whose *distinct fresh values* would push a column
    /// dictionary past its capacity. `check_row` only catches a column
    /// that is already full; this pass also catches the batch that fills
    /// the remaining headroom mid-application. Fast path: when a column
    /// has more headroom than the batch has inserts, no counting is done.
    fn check_dictionary_headroom(&self, batch: &Batch) -> Result<()> {
        let rows: Vec<&[String]> = batch
            .ops()
            .iter()
            .filter_map(|op| match op {
                ChangeOp::Insert(row) | ChangeOp::Update(_, row) => Some(row.as_slice()),
                ChangeOp::Delete(_) => None,
            })
            .collect();
        for attr in 0..self.arity() {
            let dict = &self.dictionaries[attr];
            if dict.len() + rows.len() <= dict.capacity() {
                continue;
            }
            let mut fresh: HashSet<&str> = HashSet::new();
            for row in &rows {
                let value = row[attr].as_str();
                if dict.lookup(value).is_none() {
                    fresh.insert(value);
                }
                if dict.len() + fresh.len() > dict.capacity() {
                    return Err(DynError::DictionaryOverflow {
                        attr,
                        capacity: dict.capacity(),
                    });
                }
            }
        }
        Ok(())
    }

    fn check_live(&self, rid: RecordId, pending_inserts: u64, dead: &[RecordId]) -> Result<()> {
        if dead.contains(&rid) {
            // The record existed (or was created in this batch) but an
            // earlier op already consumed it: a duplicate reference, not
            // an unknown id.
            return Err(DynError::DuplicateRecord(rid));
        }
        let exists_now = self.contains(rid);
        let created_in_batch =
            rid >= self.next_id && rid.raw() < self.next_id.raw() + pending_inserts;
        if exists_now || created_in_batch {
            Ok(())
        } else {
            Err(DynError::UnknownRecord(rid))
        }
    }

    /// Reconstructs a relation from its *logical* persisted parts:
    /// schema, null policy, id counter, the full per-column dictionaries
    /// (dead codes included, so codes stay stable across a save/restore
    /// cycle), and the compressed records. Slots are assigned compactly
    /// in ascending record-id order with an empty free-list; PLIs are
    /// rebuilt by inserting in that same order, which reproduces the
    /// exact cluster member order incremental maintenance would hold
    /// (rid-sorted, emptied clusters absent). The result is logically
    /// equal (`==`) to the relation the parts were read from; for a
    /// *physically* identical restore use
    /// [`DynamicRelation::from_arena_parts`].
    ///
    /// # Errors
    ///
    /// Returns [`DynError::Parse`] when the parts are inconsistent — a
    /// record of the wrong arity, a value code no dictionary entry
    /// covers, a record id at or past `next_id`, or a duplicate record
    /// id. (Checksums catch random corruption before decoding; this
    /// guards the semantic gaps checksums cannot see.)
    pub fn from_parts(
        schema: Schema,
        null_policy: NullPolicy,
        next_id: RecordId,
        dictionaries: Vec<Dictionary>,
        mut records: Vec<(RecordId, Box<[ValueId]>)>,
    ) -> Result<Self> {
        let arity = schema.arity();
        if dictionaries.len() != arity {
            return Err(DynError::Parse(format!(
                "snapshot has {} dictionaries for {arity} columns",
                dictionaries.len()
            )));
        }
        records.sort_unstable_by_key(|(rid, _)| *rid);
        let mut rel = DynamicRelation {
            schema,
            dictionaries,
            plis: (0..arity).map(|_| Pli::new()).collect(),
            columns: (0..arity)
                .map(|_| Vec::with_capacity(records.len()))
                .collect(),
            slot_rids: Vec::with_capacity(records.len()),
            slot_of: Vec::new(),
            free: Vec::new(),
            generations: Vec::new(),
            live: 0,
            next_id,
            null_policy,
        };
        for (rid, codes) in records {
            if codes.len() != arity {
                return Err(DynError::Parse(format!(
                    "record {rid} has {} codes for {arity} columns",
                    codes.len()
                )));
            }
            if rid >= next_id {
                return Err(DynError::Parse(format!(
                    "record {rid} is at or past the id counter {next_id}"
                )));
            }
            if rel.contains(rid) {
                return Err(DynError::Parse(format!("duplicate record id {rid}")));
            }
            for (attr, &code) in codes.iter().enumerate() {
                if (code as usize) >= rel.dictionaries[attr].len() {
                    return Err(DynError::Parse(format!(
                        "record {rid} column {attr} references unassigned code {code}"
                    )));
                }
            }
            let slot = rel.allocate_slot();
            rel.slot_rids[slot as usize] = rid;
            for (attr, &code) in codes.iter().enumerate() {
                rel.columns[attr][slot as usize] = code;
                rel.plis[attr].insert(code, slot, rid, &rel.slot_rids);
            }
            let idx = rid.raw() as usize;
            if rel.slot_of.len() <= idx {
                rel.slot_of.resize(idx + 1, NO_SLOT);
            }
            rel.slot_of[idx] = slot;
            rel.live += 1;
        }
        Ok(rel)
    }

    /// Reconstructs a relation from its *physical* arena parts, as
    /// serialized by the persist layer: the slot table (`None` entries
    /// are free slots), per-live-slot code rows, the free-list in LIFO
    /// order, and per-slot generations. The restored relation is
    /// physically identical to the one the parts were read from — same
    /// slot layout, same free-list order, same generations — so post-
    /// recovery slot assignment replays exactly like the pre-crash
    /// engine's would have.
    ///
    /// # Errors
    ///
    /// [`DynError::Parse`] on any inconsistency: mismatched table
    /// lengths, a free-list that does not cover the free slots exactly
    /// once, duplicate or out-of-range record ids, or value codes no
    /// dictionary entry covers.
    #[allow(clippy::too_many_arguments)]
    pub fn from_arena_parts(
        schema: Schema,
        null_policy: NullPolicy,
        next_id: RecordId,
        dictionaries: Vec<Dictionary>,
        slot_table: Vec<(Option<RecordId>, Box<[ValueId]>)>,
        free: Vec<u32>,
        generations: Vec<u32>,
    ) -> Result<Self> {
        let arity = schema.arity();
        if dictionaries.len() != arity {
            return Err(DynError::Parse(format!(
                "snapshot has {} dictionaries for {arity} columns",
                dictionaries.len()
            )));
        }
        let slots = slot_table.len();
        if generations.len() != slots {
            return Err(DynError::Parse(format!(
                "snapshot has {} generations for {slots} slots",
                generations.len()
            )));
        }
        let mut rel = DynamicRelation {
            schema,
            dictionaries,
            plis: (0..arity).map(|_| Pli::new()).collect(),
            columns: (0..arity).map(|_| vec![0; slots]).collect(),
            slot_rids: vec![DEAD_RID; slots],
            slot_of: Vec::new(),
            free: Vec::new(),
            generations,
            live: 0,
            next_id,
            null_policy,
        };
        let mut free_seen = vec![false; slots];
        for &slot in &free {
            let s = slot as usize;
            if s >= slots || slot_table[s].0.is_some() || free_seen[s] {
                return Err(DynError::Parse(format!(
                    "free-list entry {slot} is out of range, occupied, or duplicated"
                )));
            }
            free_seen[s] = true;
        }
        let mut order: Vec<(RecordId, u32)> = Vec::with_capacity(slots);
        for (slot, (rid, codes)) in slot_table.iter().enumerate() {
            match rid {
                None => {
                    if !free_seen[slot] {
                        return Err(DynError::Parse(format!(
                            "free slot {slot} missing from the free-list"
                        )));
                    }
                }
                Some(rid) => {
                    let rid = *rid;
                    if codes.len() != arity {
                        return Err(DynError::Parse(format!(
                            "record {rid} has {} codes for {arity} columns",
                            codes.len()
                        )));
                    }
                    if rid >= next_id {
                        return Err(DynError::Parse(format!(
                            "record {rid} is at or past the id counter {next_id}"
                        )));
                    }
                    if rel.contains(rid) {
                        return Err(DynError::Parse(format!("duplicate record id {rid}")));
                    }
                    for (attr, &code) in codes.iter().enumerate() {
                        if (code as usize) >= rel.dictionaries[attr].len() {
                            return Err(DynError::Parse(format!(
                                "record {rid} column {attr} references unassigned code {code}"
                            )));
                        }
                        rel.columns[attr][slot] = code;
                    }
                    rel.slot_rids[slot] = rid;
                    let idx = rid.raw() as usize;
                    if rel.slot_of.len() <= idx {
                        rel.slot_of.resize(idx + 1, NO_SLOT);
                    }
                    rel.slot_of[idx] = slot as u32;
                    rel.live += 1;
                    order.push((rid, slot as u32));
                }
            }
        }
        rel.free = free;
        // PLIs are rebuilt in ascending record-id order — the member
        // order incremental maintenance keeps clusters in.
        order.sort_unstable();
        for (rid, slot) in order {
            for attr in 0..arity {
                let code = rel.columns[attr][slot as usize];
                rel.plis[attr].insert(code, slot, rid, &rel.slot_rids);
            }
        }
        Ok(rel)
    }

    /// Rebuilds PLIs and dictionaries from the live records, for
    /// validating incremental maintenance in tests. O(n·m); never used on
    /// the hot path.
    pub fn rebuild_from_scratch(&self) -> DynamicRelation {
        let mut ids: Vec<RecordId> = self.record_ids().collect();
        ids.sort_unstable();
        let mut fresh = DynamicRelation::new(self.schema.clone());
        for rid in ids {
            // Invariant: `ids` was collected from the live slot table.
            let row = self.materialize(rid).expect("live record");
            // Preserve original ids so the two relations are comparable.
            fresh.next_id = rid;
            fresh.insert_row(&row).expect("rebuild insert");
        }
        fresh.next_id = self.next_id;
        fresh
    }

    /// Debug-only structural audit of the arena invariants: slot maps
    /// are mutually inverse, the free-list covers dead slots exactly,
    /// and every PLI cluster references live slots whose column code
    /// matches the cluster's value, in ascending rid order. Used by the
    /// fuzz harness after slot-churn traces; O(n·m).
    pub fn check_arena_invariants(&self) -> Result<()> {
        let fail = |msg: String| Err(DynError::Parse(msg));
        let mut live = 0usize;
        for (slot, &rid) in self.slot_rids.iter().enumerate() {
            if rid == DEAD_RID {
                if self.columns.iter().any(|c| c[slot] != 0) {
                    return fail(format!("dead slot {slot} holds non-zero codes"));
                }
                continue;
            }
            live += 1;
            if self.slot_of(rid) != Some(slot as u32) {
                return fail(format!("slot {slot} holds {rid} but slot_of disagrees"));
            }
        }
        if live != self.live {
            return fail(format!("live count {} != occupied slots {live}", self.live));
        }
        if self.free.len() + live != self.slot_rids.len() {
            return fail("free-list and live slots do not partition the arena".into());
        }
        let mut seen = vec![false; self.slot_rids.len()];
        for &slot in &self.free {
            let s = slot as usize;
            if s >= seen.len() || seen[s] || self.slot_rids[s] != DEAD_RID {
                return fail(format!("free-list entry {slot} invalid"));
            }
            seen[s] = true;
        }
        for (attr, pli) in self.plis.iter().enumerate() {
            let mut entries = 0usize;
            for (value, cluster) in pli.iter() {
                entries += cluster.len();
                let mut prev: Option<RecordId> = None;
                for &slot in cluster {
                    let rid = self.slot_rids[slot as usize];
                    if rid == DEAD_RID {
                        return fail(format!("PLI {attr} value {value} references free slot"));
                    }
                    if self.columns[attr][slot as usize] != value {
                        return fail(format!("PLI {attr} cluster {value} code mismatch"));
                    }
                    if prev.is_some_and(|p| p >= rid) {
                        return fail(format!("PLI {attr} cluster {value} not rid-sorted"));
                    }
                    prev = Some(rid);
                }
            }
            if entries != self.live {
                return fail(format!(
                    "PLI {attr} indexes {entries} of {} records",
                    self.live
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of the paper, Table 1 (initial tuples 1-4,
    /// re-indexed to ids 0-3).
    pub(crate) fn paper_relation() -> DynamicRelation {
        let schema = Schema::of("people", &["firstname", "lastname", "zip", "city"]);
        DynamicRelation::from_rows(
            schema,
            &[
                vec!["Max", "Jones", "14482", "Potsdam"],
                vec!["Max", "Miller", "14482", "Potsdam"],
                vec!["Max", "Jones", "10115", "Berlin"],
                vec!["Anna", "Scott", "13591", "Berlin"],
            ],
        )
        .unwrap()
    }

    /// The rid clusters of one column, in value-code order (tests were
    /// written against the row-store PLI's rid view).
    fn rid_clusters(rel: &DynamicRelation, attr: usize) -> Vec<Vec<RecordId>> {
        rel.pli(attr)
            .iter()
            .map(|(_, c)| c.iter().map(|&s| rel.rid_at_slot(s)).collect())
            .collect()
    }

    #[test]
    fn bulk_load_assigns_sequential_ids() {
        let rel = paper_relation();
        assert_eq!(rel.len(), 4);
        assert_eq!(rel.next_id(), RecordId(4));
        for i in 0..4 {
            assert!(rel.contains(RecordId(i)));
        }
    }

    #[test]
    fn compressed_records_match_table_2() {
        // Table 2 of the paper (our codes are first-seen dense codes, no
        // -1 sentinel; uniqueness shows as singleton clusters instead).
        let rel = paper_relation();
        let row = |i: u64| rel.compressed(RecordId(i)).map(|r| r.to_vec());
        assert_eq!(row(0), Some(vec![0, 0, 0, 0]));
        assert_eq!(row(1), Some(vec![0, 1, 0, 0]));
        assert_eq!(row(2), Some(vec![0, 0, 1, 1]));
        assert_eq!(row(3), Some(vec![1, 2, 2, 1]));
    }

    #[test]
    fn plis_match_paper_section_3_1() {
        let rel = paper_relation();
        let r = |i: u64| RecordId(i);
        // π_firstname = {{1,2,3},{4}} in 1-based paper ids = {{0,1,2},{3}} here.
        assert_eq!(
            rid_clusters(&rel, 0),
            vec![vec![r(0), r(1), r(2)], vec![r(3)]]
        );
        assert_eq!(
            rid_clusters(&rel, 1),
            vec![vec![r(0), r(2)], vec![r(1)], vec![r(3)]]
        );
        assert_eq!(
            rid_clusters(&rel, 2),
            vec![vec![r(0), r(1)], vec![r(2)], vec![r(3)]]
        );
        assert_eq!(
            rid_clusters(&rel, 3),
            vec![vec![r(0), r(1)], vec![r(2), r(3)]]
        );
    }

    #[test]
    fn paper_batch_delete_3_insert_5_6() {
        // The batch of Table 1: delete tuple 3 (id 2), insert tuples 5, 6.
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch
            .delete(RecordId(2))
            .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
            .insert(vec!["Marie", "Gray", "14469", "Potsdam"]);
        let applied = rel.apply_batch(&batch).unwrap();
        assert_eq!(applied.deleted, vec![RecordId(2)]);
        assert_eq!(applied.inserted, vec![RecordId(4), RecordId(5)]);
        assert_eq!(applied.first_new_id, Some(RecordId(4)));
        assert_eq!(applied.inserted_slots.len(), 2);
        assert_eq!(rel.len(), 5);
        assert!(!rel.contains(RecordId(2)));
        assert_eq!(
            rel.materialize(RecordId(4)).unwrap(),
            vec!["Marie", "Scott", "14467", "Potsdam"]
        );
        rel.check_arena_invariants().unwrap();
    }

    #[test]
    fn slots_are_reused_lifo() {
        let mut rel = paper_relation();
        let old_slot = rel.slot_of(RecordId(2)).unwrap();
        let gen_before = rel.generations()[old_slot as usize];
        rel.delete_record(RecordId(2)).unwrap();
        assert_eq!(rel.free_slots(), &[old_slot]);
        assert_eq!(rel.generations()[old_slot as usize], gen_before + 1);
        // The next insert reuses the freed slot.
        let rid = rel.insert_row(&["P", "Q", "R", "S"]).unwrap();
        assert_eq!(rel.slot_of(rid), Some(old_slot));
        assert!(rel.free_slots().is_empty());
        assert_eq!(rel.arena_len(), 4, "arena did not grow");
        rel.check_arena_invariants().unwrap();
    }

    #[test]
    fn update_is_delete_plus_insert_with_fresh_id() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch.update(RecordId(1), vec!["Max", "Miller", "10115", "Berlin"]);
        let applied = rel.apply_batch(&batch).unwrap();
        assert_eq!(applied.deleted, vec![RecordId(1)]);
        assert_eq!(applied.inserted, vec![RecordId(4)]);
        assert!(!rel.contains(RecordId(1)));
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn delete_of_unknown_record_fails_atomically() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch.insert(vec!["A", "B", "C", "D"]).delete(RecordId(99));
        let err = rel.apply_batch(&batch).unwrap_err();
        assert_eq!(err, DynError::UnknownRecord(RecordId(99)));
        // Nothing applied.
        assert_eq!(rel.len(), 4);
        assert_eq!(rel.next_id(), RecordId(4));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut rel = paper_relation();
        let err = rel.insert_row(&["only", "three", "values"]).unwrap_err();
        assert_eq!(
            err,
            DynError::ArityMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn insert_then_delete_same_batch_nets_out() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        // The row inserted here will get id 4; delete it in the same batch.
        batch.insert(vec!["X", "Y", "Z", "W"]).delete(RecordId(4));
        let applied = rel.apply_batch(&batch).unwrap();
        assert!(applied.inserted.is_empty());
        assert!(applied.inserted_slots.is_empty());
        assert!(applied.deleted.is_empty());
        assert_eq!(rel.len(), 4);
        assert!(!rel.contains(RecordId(4)));
        // The id is still consumed.
        assert_eq!(rel.next_id(), RecordId(5));
        rel.check_arena_invariants().unwrap();
    }

    #[test]
    fn double_delete_in_one_batch_rejected() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch.delete(RecordId(0)).delete(RecordId(0));
        assert_eq!(
            rel.apply_batch(&batch).unwrap_err(),
            DynError::DuplicateRecord(RecordId(0))
        );
    }

    #[test]
    fn delete_after_update_of_same_record_is_duplicate() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch
            .update(RecordId(1), vec!["Max", "Miller", "10115", "Berlin"])
            .delete(RecordId(1));
        assert_eq!(
            rel.apply_batch(&batch).unwrap_err(),
            DynError::DuplicateRecord(RecordId(1))
        );
        assert_eq!(rel, paper_relation());
    }

    #[test]
    fn reject_nulls_policy_blocks_batch_atomically() {
        let mut rel = paper_relation();
        rel.set_null_policy(NullPolicy::RejectNulls);
        let mut snapshot = paper_relation();
        snapshot.set_null_policy(NullPolicy::RejectNulls);
        let mut batch = Batch::new();
        batch
            .delete(RecordId(0))
            .insert(vec!["Marie", "", "14467", "Potsdam"]);
        assert_eq!(
            rel.apply_batch(&batch).unwrap_err(),
            DynError::NullValue { attr: 1 }
        );
        assert_eq!(rel, snapshot);
        // The default policy accepts the same batch.
        rel.set_null_policy(NullPolicy::AllowAll);
        snapshot.set_null_policy(NullPolicy::AllowAll);
        rel.apply_batch(&batch).unwrap();
        assert_ne!(rel, snapshot);
    }

    #[test]
    fn dictionary_overflow_pre_checked() {
        let mut rel = paper_relation();
        rel.set_dictionary_capacity(2, rel.dictionary(2).len() + 1);
        let snapshot = rel.clone();
        // Two fresh zip codes but headroom for one: rejected up front,
        // even though each row passes `check_row` in isolation.
        let mut batch = Batch::new();
        batch
            .insert(vec!["A", "B", "99991", "Golm"])
            .insert(vec!["C", "D", "99992", "Golm"]);
        assert_eq!(
            rel.apply_batch(&batch).unwrap_err(),
            DynError::DictionaryOverflow {
                attr: 2,
                capacity: 4
            }
        );
        assert_eq!(rel, snapshot);
        // One fresh zip (used twice) fits exactly.
        let mut ok = Batch::new();
        ok.insert(vec!["A", "B", "99991", "Golm"])
            .insert(vec!["C", "D", "99991", "Golm"]);
        rel.apply_batch(&ok).unwrap();
        assert_eq!(rel.dictionary(2).len(), 4);
    }

    #[test]
    fn rollback_restores_pre_batch_state_exactly() {
        let mut rel = paper_relation();
        // Pre-churn so the free-list is non-empty going into the batch.
        rel.delete_record(RecordId(1)).unwrap();
        let snapshot = rel.clone();
        let mut batch = Batch::new();
        batch
            .delete(RecordId(2))
            .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
            .update(RecordId(0), vec!["Max", "Jones", "14482", "Golm"])
            .insert(vec!["X", "Y", "Z", "W"])
            .delete(RecordId(6)); // the "X Y Z W" insert: deferred delete
        let (applied, undo) = rel.apply_batch_logged(&batch).unwrap();
        assert!(applied.has_inserts() && applied.has_deletes());
        assert_ne!(rel, snapshot);
        rel.rollback(undo);
        assert_eq!(rel, snapshot);
        // Physical restoration, not just logical equality.
        assert_eq!(rel.free_slots(), snapshot.free_slots());
        assert_eq!(rel.slot_rids(), snapshot.slot_rids());
        assert_eq!(rel.generations(), snapshot.generations());
        assert_eq!(rel.arena_len(), snapshot.arena_len());
        rel.check_arena_invariants().unwrap();
        // The rolled-back relation is fully usable afterwards.
        let mut again = Batch::new();
        again.insert(vec!["P", "Q", "R", "S"]);
        let applied = rel.apply_batch(&again).unwrap();
        assert_eq!(applied.inserted, vec![RecordId(4)]);
    }

    #[test]
    fn rollback_of_empty_batch_is_noop() {
        let mut rel = paper_relation();
        let snapshot = rel.clone();
        let (_, undo) = rel.apply_batch_logged(&Batch::new()).unwrap();
        assert!(undo.is_empty());
        rel.rollback(undo);
        assert_eq!(rel, snapshot);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch.delete(RecordId(3));
        rel.apply_batch(&batch).unwrap();
        let rid = rel.insert_row(&["P", "Q", "R", "S"]).unwrap();
        assert_eq!(rid, RecordId(4));
    }

    #[test]
    fn incremental_equals_rebuilt() {
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch
            .delete(RecordId(2))
            .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
            .update(RecordId(0), vec!["Max", "Jones", "14482", "Golm"]);
        rel.apply_batch(&batch).unwrap();
        let rebuilt = rel.rebuild_from_scratch();
        assert_eq!(rel.len(), rebuilt.len());
        for attr in 0..rel.arity() {
            // Dictionary codes may differ between incremental and rebuilt
            // relations (deleted values keep their codes); compare the
            // partitions as sets of rid clusters.
            let mut a = rid_clusters(&rel, attr);
            let mut b = rid_clusters(&rebuilt, attr);
            a.sort();
            b.sort();
            assert_eq!(a, b, "column {attr} partition diverged");
        }
    }

    fn churned() -> DynamicRelation {
        // Churn the paper relation so dictionaries hold dead codes, PLIs
        // have dropped clusters, and the arena has free slots — the
        // state a snapshot must restore.
        let mut rel = paper_relation();
        let mut batch = Batch::new();
        batch
            .delete(RecordId(2))
            .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
            .update(RecordId(0), vec!["Max", "Jones", "14482", "Golm"]);
        rel.apply_batch(&batch).unwrap();
        rel.delete_record(RecordId(3)).unwrap();
        rel
    }

    #[test]
    fn from_parts_restores_equal_state() {
        let rel = churned();
        let dicts: Vec<Dictionary> = (0..rel.arity())
            .map(|a| {
                Dictionary::from_parts(
                    rel.dictionary(a).value_strings(),
                    rel.dictionary(a).capacity(),
                )
            })
            .collect();
        let records: Vec<(RecordId, Box<[ValueId]>)> = rel
            .records()
            .map(|(rid, codes)| (rid, codes.to_vec().into_boxed_slice()))
            .collect();
        let restored = DynamicRelation::from_parts(
            rel.schema().clone(),
            rel.null_policy(),
            rel.next_id(),
            dicts,
            records,
        )
        .unwrap();
        assert_eq!(restored, rel, "restore must be logically identical");
        restored.check_arena_invariants().unwrap();
    }

    #[test]
    fn from_arena_parts_restores_physical_layout() {
        let rel = churned();
        let dicts: Vec<Dictionary> = (0..rel.arity())
            .map(|a| {
                Dictionary::from_parts(
                    rel.dictionary(a).value_strings(),
                    rel.dictionary(a).capacity(),
                )
            })
            .collect();
        let slot_table: Vec<(Option<RecordId>, Box<[ValueId]>)> = (0..rel.arena_len())
            .map(|slot| {
                let rid = rel.slot_rids()[slot];
                if rid == DEAD_RID {
                    (None, Vec::new().into_boxed_slice())
                } else {
                    (
                        Some(rid),
                        rel.row_at_slot(slot as u32).to_vec().into_boxed_slice(),
                    )
                }
            })
            .collect();
        let restored = DynamicRelation::from_arena_parts(
            rel.schema().clone(),
            rel.null_policy(),
            rel.next_id(),
            dicts,
            slot_table,
            rel.free_slots().to_vec(),
            rel.generations().to_vec(),
        )
        .unwrap();
        assert_eq!(restored, rel);
        assert_eq!(restored.slot_rids(), rel.slot_rids());
        assert_eq!(restored.free_slots(), rel.free_slots());
        assert_eq!(restored.generations(), rel.generations());
        assert_eq!(restored.columns(), rel.columns());
        restored.check_arena_invariants().unwrap();
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        let rel = paper_relation();
        let dicts = |r: &DynamicRelation| -> Vec<Dictionary> {
            (0..r.arity())
                .map(|a| {
                    Dictionary::from_parts(
                        r.dictionary(a).value_strings(),
                        r.dictionary(a).capacity(),
                    )
                })
                .collect()
        };
        let recs = |r: &DynamicRelation| -> Vec<(RecordId, Box<[ValueId]>)> {
            r.records()
                .map(|(rid, c)| (rid, c.to_vec().into_boxed_slice()))
                .collect()
        };
        // Record id at the counter.
        let mut bad = recs(&rel);
        bad[0].0 = rel.next_id();
        assert!(matches!(
            DynamicRelation::from_parts(
                rel.schema().clone(),
                rel.null_policy(),
                rel.next_id(),
                dicts(&rel),
                bad
            ),
            Err(DynError::Parse(_))
        ));
        // Unassigned value code.
        let mut bad = recs(&rel);
        bad[0].1[0] = 9999;
        assert!(matches!(
            DynamicRelation::from_parts(
                rel.schema().clone(),
                rel.null_policy(),
                rel.next_id(),
                dicts(&rel),
                bad
            ),
            Err(DynError::Parse(_))
        ));
        // Duplicate record id.
        let mut bad = recs(&rel);
        let clone = bad[0].clone();
        bad.push(clone);
        assert!(matches!(
            DynamicRelation::from_parts(
                rel.schema().clone(),
                rel.null_policy(),
                rel.next_id(),
                dicts(&rel),
                bad
            ),
            Err(DynError::Parse(_))
        ));
    }

    #[test]
    fn from_arena_parts_rejects_bad_free_list() {
        let rel = churned();
        let dicts: Vec<Dictionary> = (0..rel.arity())
            .map(|a| {
                Dictionary::from_parts(
                    rel.dictionary(a).value_strings(),
                    rel.dictionary(a).capacity(),
                )
            })
            .collect();
        let slot_table: Vec<(Option<RecordId>, Box<[ValueId]>)> = (0..rel.arena_len())
            .map(|slot| {
                let rid = rel.slot_rids()[slot];
                if rid == DEAD_RID {
                    (None, Vec::new().into_boxed_slice())
                } else {
                    (
                        Some(rid),
                        rel.row_at_slot(slot as u32).to_vec().into_boxed_slice(),
                    )
                }
            })
            .collect();
        // Free-list missing an entry the slot table marks free.
        assert!(matches!(
            DynamicRelation::from_arena_parts(
                rel.schema().clone(),
                rel.null_policy(),
                rel.next_id(),
                dicts,
                slot_table,
                Vec::new(),
                rel.generations().to_vec(),
            ),
            Err(DynError::Parse(_))
        ));
    }

    #[test]
    fn materialize_roundtrips() {
        let rel = paper_relation();
        assert_eq!(
            rel.materialize(RecordId(3)).unwrap(),
            vec!["Anna", "Scott", "13591", "Berlin"]
        );
        assert_eq!(rel.materialize(RecordId(9)), None);
    }

    #[test]
    fn empty_relation_behaviour() {
        let mut rel = DynamicRelation::new(Schema::of("t", &["a", "b"]));
        assert!(rel.is_empty());
        let applied = rel.apply_batch(&Batch::new()).unwrap();
        assert!(!applied.has_inserts() && !applied.has_deletes());
        let rid = rel.insert_row(&["x", "y"]).unwrap();
        assert_eq!(rid, RecordId(0));
        assert!(!rel.is_empty());
    }

    #[test]
    fn heavy_churn_keeps_invariants_and_logical_state() {
        // Delete/reinsert interleaving: the slot-churn pattern the fuzz
        // profile stresses, checked directly here.
        let mut rel = DynamicRelation::new(Schema::anonymous("t", 3));
        let mut live: Vec<RecordId> = Vec::new();
        for round in 0..50u64 {
            let rid = rel
                .insert_row(&[
                    format!("a{}", round % 7),
                    format!("b{}", round % 3),
                    format!("c{round}"),
                ])
                .unwrap();
            live.push(rid);
            if round % 2 == 1 {
                // Delete an older record (front) to force slot reuse out
                // of rid order.
                let victim = live.remove((round as usize / 2) % live.len());
                rel.delete_record(victim).unwrap();
            }
        }
        rel.check_arena_invariants().unwrap();
        assert_eq!(rel.len(), live.len());
        let rebuilt = rel.rebuild_from_scratch();
        assert_eq!(rel.len(), rebuilt.len());
        for rid in live {
            assert_eq!(rel.materialize(rid), rebuilt.materialize(rid));
        }
    }
}
