//! Shared dependency-induction kernels.
//!
//! Both directions of cover maintenance reduce to the same two moves:
//!
//! * an observed **non-FD** `X -> a` invalidates every stored FD
//!   `Y -> a` with `Y ⊆ X`; each such FD is *specialized* into its
//!   minimal children ([`specialize_into`], the positive-cover half of
//!   paper Algorithm 3, also the core of classic dependency induction
//!   used by FDEP and HyFD);
//! * an observed **FD** `X -> a` validates every stored non-FD `Y -> a`
//!   with `Y ⊇ X`; each such non-FD is *generalized* into its maximal
//!   parents ([`generalize_into`], the negative-cover half of paper
//!   Algorithm 6).

use crate::FdTree;
use dynfd_common::{AttrId, AttrSet};

/// Incorporates the observed non-FD `x -> rhs` into a positive cover of
/// minimal FDs over an `arity`-column relation.
///
/// Every stored generalization `Y ⊆ x` with the same RHS is violated by
/// the same witness and is removed; for each, all direct specializations
/// `Y ∪ {r}` that can escape the witness (`r ∉ x ∪ {rhs}`, per
/// Algorithm 3 line 5) are added back when minimal.
///
/// Returns the LHSs of the invalidated FDs (the caller typically mirrors
/// them into a negative cover).
pub fn specialize_into(fds: &mut FdTree, x: AttrSet, rhs: AttrId, arity: usize) -> Vec<AttrSet> {
    let invalid = fds.remove_generalizations(x, rhs);
    for &lhs in &invalid {
        for r in 0..arity {
            if r == rhs || x.contains(r) {
                // r ∈ x: the specialization would still be ⊆ x-extended
                // by an attribute the witness pair agrees on, i.e. still
                // violated by the same pair — skip (Algorithm 3 line 5).
                continue;
            }
            fds.add_minimal(lhs.with(r), rhs);
        }
    }
    invalid
}

/// Incorporates the observed (valid) FD `x -> rhs` into a negative cover
/// of maximal non-FDs.
///
/// Every stored specialization `Y ⊇ x` with the same RHS is now valid
/// and is removed; for each, the direct generalizations `Y \ {r}` for
/// `r ∈ x` (only those can dodge the new FD, per Algorithm 6 line 5) are
/// added back when maximal.
///
/// Returns the LHSs of the removed non-FDs (the caller typically mirrors
/// them into a positive cover).
pub fn generalize_into(non_fds: &mut FdTree, x: AttrSet, rhs: AttrId) -> Vec<AttrSet> {
    let valid = non_fds.remove_specializations(x, rhs);
    for &nf_lhs in &valid {
        for r in x.iter() {
            // r ∈ x ⊆ nf_lhs, so the removal is always effective.
            non_fds.add_maximal(nf_lhs.without(r), rhs);
        }
    }
    valid
}

/// Classic dependency induction ("cover inversion" in [6], "dependency
/// induction" in [13]): derives the positive cover of minimal FDs from a
/// negative cover of (maximal) non-FDs over an `arity`-column relation.
///
/// For each RHS a level-wise search ascends from `∅`: a candidate LHS
/// that has a specialization in the negative cover is violated and is
/// extended by every attribute that *escapes* the violating maximal
/// non-FD; a candidate with no such specialization is valid, and —
/// because levels are processed in order — minimal.
///
/// This is the inverse of [`invert_positive_cover`]
/// (crate::invert_positive_cover); the two functions round-trip, which
/// the integration tests exercise.
pub fn induce_from_negative_cover(non_fds: &FdTree, arity: usize) -> FdTree {
    let mut fds = FdTree::new();
    for rhs in 0..arity {
        let mut level: Vec<AttrSet> = vec![AttrSet::empty()];
        while !level.is_empty() {
            let mut next: Vec<AttrSet> = Vec::new();
            for lhs in level {
                if fds.contains_generalization(lhs, rhs) {
                    continue; // already implied by a (minimal) valid FD
                }
                match non_fds.find_specialization(lhs, rhs) {
                    None => {
                        // No maximal non-FD covers this LHS: it is valid,
                        // and minimal w.r.t. all smaller levels.
                        fds.add(lhs, rhs);
                    }
                    Some(witness) => {
                        // Violated: extend by attributes escaping the witness.
                        for b in 0..arity {
                            if b != rhs && !witness.contains(b) {
                                next.push(lhs.with(b));
                            }
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            level = next;
        }
    }
    fds
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::Fd;

    fn s(attrs: &[usize]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    fn tree(fds: &[(&[usize], usize)]) -> FdTree {
        fds.iter().map(|&(l, r)| Fd::new(s(l), r)).collect()
    }

    #[test]
    fn specialize_removes_violated_and_adds_minimal_children() {
        // Cover over 4 attrs: {1} -> 0 is stored; the non-FD {1,2} -> 0
        // invalidates it. Only attr 3 can extend (2 ∈ x, 0 = rhs).
        let mut fds = tree(&[(&[1], 0)]);
        let invalid = specialize_into(&mut fds, s(&[1, 2]), 0, 4);
        assert_eq!(invalid, vec![s(&[1])]);
        assert_eq!(fds.all_fds(), vec![Fd::new(s(&[1, 3]), 0)]);
    }

    #[test]
    fn specialize_respects_minimality_of_survivors() {
        // {3} -> 0 survives (not ⊆ {1,2}); the child {1,3} of the
        // invalidated {1} -> 0 is NOT minimal because {3} -> 0 holds.
        let mut fds = tree(&[(&[1], 0), (&[3], 0)]);
        specialize_into(&mut fds, s(&[1, 2]), 0, 4);
        assert_eq!(fds.all_fds(), vec![Fd::new(s(&[3]), 0)]);
        assert!(fds.is_antichain());
    }

    #[test]
    fn specialize_with_no_violated_fd_is_a_noop() {
        let mut fds = tree(&[(&[3], 0)]);
        let invalid = specialize_into(&mut fds, s(&[1, 2]), 0, 4);
        assert!(invalid.is_empty());
        assert_eq!(fds.len(), 1);
    }

    #[test]
    fn specialize_empty_lhs_fd() {
        // ∅ -> 0 invalidated by the non-FD {1} -> 0 over 3 attrs:
        // children are {2} -> 0 only (1 ∈ x, 0 = rhs).
        let mut fds = tree(&[(&[], 0)]);
        specialize_into(&mut fds, s(&[1]), 0, 3);
        assert_eq!(fds.all_fds(), vec![Fd::new(s(&[2]), 0)]);
    }

    #[test]
    fn specialize_can_empty_the_rhs_entirely() {
        // Non-FD over all other attributes: no escape attribute exists.
        let mut fds = tree(&[(&[1], 0), (&[2], 0)]);
        specialize_into(&mut fds, s(&[1, 2]), 0, 3);
        assert!(fds.is_empty(), "no attribute left to specialize with");
    }

    #[test]
    fn generalize_removes_valid_and_adds_maximal_parents() {
        // Negative cover: {1,2,3} -> 0 stored; the FD {2} -> 0 becomes
        // valid, so that non-FD is gone; parents drop an attr of x={2}:
        // {1,3} -> 0.
        let mut non_fds = tree(&[(&[1, 2, 3], 0)]);
        let valid = generalize_into(&mut non_fds, s(&[2]), 0);
        assert_eq!(valid, vec![s(&[1, 2, 3])]);
        assert_eq!(non_fds.all_fds(), vec![Fd::new(s(&[1, 3]), 0)]);
    }

    #[test]
    fn generalize_respects_maximality() {
        // {1,2} -> 0 and {1,2,3} -> 0 can't coexist (antichain), so use
        // two incomparable non-FDs where one generated parent is already
        // covered: x = {2,3}; specializations of x: {1,2,3} and {2,3,4}.
        let mut non_fds = tree(&[(&[1, 2, 3], 0), (&[2, 3, 4], 0), (&[1, 4], 0)]);
        generalize_into(&mut non_fds, s(&[2, 3]), 0);
        // Parents: {1,3},{1,2} from the first; {3,4},{2,4} from the second.
        let got = non_fds.all_fds();
        assert!(got.contains(&Fd::new(s(&[1, 2]), 0)));
        assert!(got.contains(&Fd::new(s(&[1, 3]), 0)));
        assert!(got.contains(&Fd::new(s(&[2, 4]), 0)));
        assert!(got.contains(&Fd::new(s(&[3, 4]), 0)));
        assert!(
            got.contains(&Fd::new(s(&[1, 4]), 0)),
            "untouched non-FD survives"
        );
        assert!(non_fds.is_antichain());
    }

    #[test]
    fn generalize_with_empty_x_clears_the_rhs() {
        // ∅ -> 0 valid means no non-FD with RHS 0 can exist; there are
        // no parents to add.
        let mut non_fds = tree(&[(&[1, 2], 0), (&[3], 0), (&[1], 2)]);
        let valid = generalize_into(&mut non_fds, AttrSet::empty(), 0);
        assert_eq!(valid.len(), 2);
        assert_eq!(non_fds.all_fds(), vec![Fd::new(s(&[1]), 2)]);
    }

    #[test]
    fn induce_paper_example() {
        // Negative cover from the paper's Section 3.2 worked example:
        // fzc→l, fl→z, fl→c, c→f, c→z  (f=0, l=1, z=2, c=3).
        let non_fds = tree(&[
            (&[0, 2, 3], 1),
            (&[0, 1], 2),
            (&[0, 1], 3),
            (&[3], 0),
            (&[3], 2),
        ]);
        let fds = induce_from_negative_cover(&non_fds, 4);
        // Expected minimal FDs: l→f, z→f, z→c, fc→z, lc→z.
        let expect = tree(&[(&[1], 0), (&[2], 0), (&[2], 3), (&[0, 3], 2), (&[1, 3], 2)]);
        assert_eq!(fds, expect);
    }

    #[test]
    fn induce_from_empty_negative_cover_gives_empty_lhs_fds() {
        let fds = induce_from_negative_cover(&FdTree::new(), 3);
        let expect = tree(&[(&[], 0), (&[], 1), (&[], 2)]);
        assert_eq!(fds, expect);
    }

    #[test]
    fn induce_inverts_inversion() {
        // invert_positive_cover ∘ induce_from_negative_cover = identity
        // on antichain covers.
        use crate::invert_positive_cover;
        let covers = [
            tree(&[(&[1], 0), (&[2], 0), (&[2], 3), (&[0, 3], 2), (&[1, 3], 2)]),
            tree(&[(&[0], 1), (&[0], 2), (&[0], 3)]),
            tree(&[(&[], 0), (&[1, 2], 0)]), // {} -> 0 subsumes; add ignored? kept minimal:
        ];
        for fds in &covers {
            // Normalize: only antichain covers round-trip; skip covers
            // that are not antichains.
            if !fds.is_antichain() {
                continue;
            }
            let neg = invert_positive_cover(fds, 4);
            let back = induce_from_negative_cover(&neg, 4);
            assert_eq!(&back, fds);
        }
    }

    #[test]
    fn roundtrip_specialize_then_generalize() {
        // Invalidate {1} -> 0 via non-FD {1} -> 0 itself, then validate
        // it again: the covers must return to a consistent antichain.
        let mut fds = tree(&[(&[1], 0)]);
        let mut non_fds = FdTree::new();
        let invalid = specialize_into(&mut fds, s(&[1]), 0, 3);
        for lhs in invalid {
            non_fds.add_maximal_evicting(lhs, 0);
        }
        assert!(non_fds.contains(s(&[1]), 0));
        // fds now holds {1,2} -> 0 (attr 2 is the only escape).
        assert_eq!(fds.all_fds(), vec![Fd::new(s(&[1, 2]), 0)]);

        let valid = generalize_into(&mut non_fds, s(&[1]), 0);
        assert_eq!(valid, vec![s(&[1])]);
        for lhs in valid {
            fds.remove_specializations(lhs, 0);
            fds.add_minimal(lhs, 0);
        }
        assert_eq!(fds.all_fds(), vec![Fd::new(s(&[1]), 0)]);
        // The generalization ∅ -> 0 enters the negative cover as a
        // *candidate*: Algorithm 6 does not validate the parents it
        // generates — the bottom-up lattice traversal (Algorithm 4)
        // checks them when it reaches their level.
        assert_eq!(non_fds.all_fds(), vec![Fd::new(AttrSet::empty(), 0)]);
    }
}
