//! Delete handling — the lattice-based non-FD validation of Algorithm 4.
//!
//! Deletes can only *resolve* violations, i.e. turn non-FDs into FDs, so
//! the negative cover is the right place to look. The traversal mirrors
//! the insert phase upside down: it starts at the most specific maximal
//! non-FDs and ascends; a non-FD found valid moves to the positive cover
//! and its direct generalizations become new negative-cover candidates,
//! validated on the next (lower) level. Two accelerations apply:
//!
//! * **validation pruning** (§5.2): each maximal non-FD carries a cached
//!   violating record pair; while both records live, the non-FD cannot
//!   have become valid and its validation is skipped;
//! * **depth-first searches** (§5.3): when >10 % of a level validates,
//!   optimistic depth-first probes hunt for small-LHS maximal non-FDs
//!   that prune whole swaths of candidates.

use crate::errors::DynFdResult;
use crate::failpoint::FailPhase;
use crate::{BatchMetrics, DynFd};
use dynfd_common::{AttrSet, Fd};
use dynfd_relation::{AppliedBatch, RhsOutcome, ValidationJob, ValidationOptions};

impl DynFd {
    /// Processes the batch's deletes (Algorithm 4).
    pub(crate) fn process_deletes(
        &mut self,
        applied: &AppliedBatch,
        metrics: &mut BatchMetrics,
    ) -> DynFdResult<()> {
        let Some(max_level) = self.non_fds.max_level() else {
            return Ok(()); // no non-FDs at all: every candidate already valid
        };
        let full = ValidationOptions::full();

        // Line 1: from the most specific level towards the most general.
        for level in (0..=max_level).rev() {
            let snapshot = self.non_fds.get_level(level);
            let total = snapshot.len();
            let mut valid_fds: Vec<Fd> = Vec::new();

            // Lines 2-5: decide which of the level's (still live) non-FDs
            // need a validation at all. All three skip checks — liveness,
            // update pruning, and the §5.2 needsValidation() probe — stay
            // on the coordinating thread: they read (and §5.2 logically
            // belongs with code that later *writes*) the violation store,
            // which is not shared with workers. Only the pure PLI
            // validations of the survivors fan out.
            let mut survivors: Vec<Fd> = Vec::new();
            for non_fd in snapshot {
                if !self.non_fds.contains(non_fd.lhs, non_fd.rhs) {
                    continue; // evicted by an earlier depth-first search
                }
                // §8 extension, update pruning: a pure-update batch that
                // touched none of the candidate's attributes cannot have
                // resolved its violations.
                if self.config.update_pruning
                    && applied.update_only
                    && non_fd.lhs.is_disjoint(&applied.touched_attrs)
                    && !applied.touched_attrs.contains(non_fd.rhs)
                {
                    metrics.skipped_by_update_pruning += 1;
                    continue;
                }
                // needsValidation() — §5.2: a cached violating pair that
                // survived this batch's deletes proves the non-FD.
                if self.config.validation_pruning && self.violations.get(&non_fd).is_some() {
                    metrics.validations_skipped += 1;
                    continue;
                }
                metrics.non_fd_validations += 1;
                survivors.push(non_fd);
            }

            // Fan out the survivors' validations, then apply the verdicts
            // in snapshot order — identical to the sequential loop.
            let jobs: Vec<ValidationJob> = survivors
                .iter()
                .map(|fd| (fd.lhs, AttrSet::single(fd.rhs)))
                .collect();
            let results = self.run_level_validations(&jobs, &full);
            for (&non_fd, result) in survivors.iter().zip(results) {
                metrics.clusters_visited += result.stats.clusters_visited;
                match result.outcome(non_fd.rhs) {
                    RhsOutcome::Valid => valid_fds.push(non_fd),
                    RhsOutcome::Violated(a, b) => {
                        // Re-attach a fresh surrogate violation.
                        if self.config.validation_pruning {
                            self.violations.attach(non_fd, (a, b));
                        }
                    }
                }
            }

            // Lines 6-12: promote newly valid FDs — remove from the
            // negative cover, generalize into candidates for the next
            // level, and install as minimal FDs in the positive cover.
            for &fd in &valid_fds {
                self.violations.detach(&fd);
                self.apply_valid_fd(fd);
            }

            // Fault-injection check point: after this level's verdicts
            // are applied (where a real corruption bug would bite).
            self.failpoint_check(FailPhase::DeletePhase, metrics);

            // Lines 15-16: optimistic depth-first searches when many
            // non-FDs of this level turned valid.
            if self.config.depth_first_search
                && total > 0
                && valid_fds.len() as f64 / total as f64 > self.config.inefficiency_threshold
            {
                self.depth_first_from_seeds(&valid_fds, metrics);
            }
        }
        Ok(())
    }
}
