//! Tenant isolation under faults: one tenant blowing up mid-batch —
//! whether through the engine's own transactional boundary (an injected
//! failpoint panic, rolled back and rejected with a typed error) or an
//! *escaped* panic that poisons the tenant's engine lock — must not
//! perturb any other tenant's covers, violation annotations, metrics,
//! or queue depth. The blast radius of a panic is exactly one tenant.
//!
//! Contract under test (DESIGN.md §6g):
//!
//! * an injected mid-batch panic is caught at the engine boundary,
//!   rolled back bit-identically, and answered with the documented
//!   `PhasePanicked` code; retrying the same batch succeeds;
//! * an escaped panic poisons only the victim's lock: every later batch
//!   for that tenant gets a typed `PhasePanicked` reply (never a hang,
//!   never a worker death), `shutdown` reports the tenant in
//!   `poisoned`, and new tenants can still be opened and served;
//! * in both cases every *other* tenant's final state matches a
//!   sequential replay bit for bit and its metrics show zero rejects.

use dynfd::core::{DynFdConfig, DynFdError, FailAction, FailPhase, FailPoint};
use dynfd::serve::{AdmissionPolicy, BatchReply, ServeConfig, ServeEngine, ServeError};
use dynfd_testkit::{sequential_oracle, silence_injected_panics, tenant_traces};
use proptest::prelude::*;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

const SEED: u64 = 4242;

fn engine(workers: usize) -> Arc<ServeEngine> {
    Arc::new(ServeEngine::new(ServeConfig {
        workers,
        queue_capacity: 1024,
        policy: AdmissionPolicy::Block,
        root: None,
        ..ServeConfig::default()
    }))
}

/// Poisons `victim`'s engine lock by panicking while holding it — the
/// escaped-panic scenario. The panic unwinds back into this thread (the
/// inspection closure runs on the caller), so the lock is left poisoned
/// exactly as a worker-side escape leaves it.
fn poison_tenant(engine: &ServeEngine, victim: &str) {
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let _ = engine.with_tenant(victim, |_| -> () {
            panic!("injected failpoint: poison {victim}")
        });
    }));
    assert!(result.is_err(), "the poisoning panic must propagate");
}

/// Checks `name` against a fresh sequential replay of its trace.
fn assert_matches_oracle(
    engine: &ServeEngine,
    name: &str,
    trace: &dynfd_testkit::Trace,
    label: &str,
) {
    let oracle = sequential_oracle(trace, DynFdConfig::default())
        .unwrap_or_else(|e| panic!("{label}: oracle for {name}: {e}"));
    let divergence = engine
        .with_tenant(name, |served| oracle.state_divergence(served))
        .unwrap_or_else(|e| panic!("{label}: inspect {name}: {e}"));
    assert_eq!(
        divergence, None,
        "{label}: tenant {name} diverged from sequential replay"
    );
}

/// The poisoning scenario, shared by the fixed-seed test and the
/// proptest: poison one of `tenants` tenants, stream everyone's batches
/// interleaved, and verify the blast radius is exactly the victim.
fn check_poison_isolation(seed: u64, tenants: usize, victim_idx: usize) {
    silence_injected_panics();
    let traces = tenant_traces(seed, tenants);
    let victim = traces[victim_idx].0.clone();
    let engine = engine(4);
    for (name, trace) in &traces {
        engine
            .open_tenant(name, trace.schema.clone(), &trace.initial_rows)
            .unwrap_or_else(|e| panic!("open {name}: {e}"));
    }
    poison_tenant(&engine, &victim);

    // Round-robin interleave every tenant's stream, victim included.
    let replies: Arc<Mutex<Vec<BatchReply>>> = Arc::default();
    let mut streams: Vec<(&str, std::vec::IntoIter<dynfd::relation::Batch>)> = traces
        .iter()
        .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
        .collect();
    let mut request_id = 0u64;
    loop {
        let mut any = false;
        for (name, stream) in &mut streams {
            let Some(batch) = stream.next() else { continue };
            any = true;
            request_id += 1;
            let sink = Arc::clone(&replies);
            engine
                .submit(name, request_id, batch, move |reply| {
                    sink.lock().unwrap().push(reply);
                })
                .unwrap_or_else(|e| panic!("submit to {name}: {e}"));
        }
        if !any {
            break;
        }
    }
    engine.quiesce();

    // Victim: every reply is the typed poisoned-tenant error.
    let replies = replies.lock().unwrap();
    let victim_batches = traces[victim_idx].1.to_batches().len() as u64;
    let mut victim_replies = 0u64;
    for reply in replies.iter().filter(|r| r.tenant == victim) {
        victim_replies += 1;
        match &reply.outcome {
            Err(ServeError::Engine(DynFdError::PhasePanicked { .. })) => {}
            other => panic!("victim reply must be PhasePanicked, got {other:?}"),
        }
    }
    assert_eq!(victim_replies, victim_batches, "victim replies accounted");
    let vm = engine.metrics(&victim).expect("victim metrics");
    assert_eq!(vm.applied, 0, "no batch may apply on a poisoned tenant");
    assert_eq!(vm.rejected, victim_batches);
    assert_eq!(vm.shed, 0);

    // Everyone else: lossless, bit-identical to sequential replay,
    // zero rejects, drained queue.
    for (i, (name, trace)) in traces.iter().enumerate() {
        if i == victim_idx {
            continue;
        }
        let batches = trace.to_batches().len() as u64;
        let ok = replies
            .iter()
            .filter(|r| &r.tenant == name && r.outcome.is_ok())
            .count() as u64;
        assert_eq!(ok, batches, "tenant {name} must apply every batch");
        assert_matches_oracle(&engine, name, trace, "poison");
        let m = engine
            .metrics(name)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(m.applied, batches, "tenant {name} applied count");
        assert_eq!(m.rejected, 0, "tenant {name} must see zero rejects");
        assert_eq!(m.shed, 0, "tenant {name} must see zero sheds");
        let depth = engine.queue_depth(name).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(depth, 0, "tenant {name} queue must drain");
    }
    drop(replies);

    // The engine itself stays healthy: a *new* tenant opens and serves.
    let fresh = dynfd_testkit::Trace::for_case(seed ^ 0xF00D, 1);
    let engine_ref = Arc::clone(&engine);
    engine_ref
        .open_tenant("late-arrival", fresh.schema.clone(), &fresh.initial_rows)
        .expect("opening a tenant after a poisoning must work");
    let (tx, rx) = mpsc::channel();
    for (i, batch) in fresh.to_batches().into_iter().enumerate() {
        let tx = tx.clone();
        engine_ref
            .submit("late-arrival", 90_000 + i as u64, batch, move |reply| {
                tx.send(reply).ok();
            })
            .expect("submit to late tenant");
        let reply = rx.recv().expect("late tenant reply");
        assert!(reply.outcome.is_ok(), "late tenant batch rejected");
    }
    engine_ref.quiesce();
    assert_matches_oracle(&engine_ref, "late-arrival", &fresh, "late");
    drop(engine_ref);

    // Shutdown names exactly the victim as poisoned; everyone else
    // syncs cleanly.
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("engine still shared"));
    let report = engine.shutdown();
    assert_eq!(report.poisoned, vec![victim], "poisoned set is the victim");
    assert_eq!(report.synced, tenants, "every healthy tenant synced");
    assert!(report.sync_errors.is_empty(), "{:?}", report.sync_errors);
}

#[test]
fn poisoned_tenant_does_not_perturb_others() {
    check_poison_isolation(SEED, 4, 1);
}

#[test]
fn injected_midbatch_panic_rolls_back_and_stays_contained() {
    silence_injected_panics();
    let traces = tenant_traces(SEED, 3);
    let victim = traces[0].0.clone();
    let engine = engine(2);
    for (name, trace) in &traces {
        engine
            .open_tenant(name, trace.schema.clone(), &trace.initial_rows)
            .unwrap_or_else(|e| panic!("open {name}: {e}"));
    }

    // Stream the bystanders' full backlogs up front so they execute
    // concurrently with the victim's trip-and-retry loop below.
    let ok_others = Arc::new(Mutex::new(0u64));
    let mut request_id = 10_000u64;
    for (name, trace) in traces.iter().skip(1) {
        for batch in trace.to_batches() {
            request_id += 1;
            let ok = Arc::clone(&ok_others);
            engine
                .submit(name, request_id, batch, move |reply| {
                    assert!(reply.outcome.is_ok(), "bystander batch rejected");
                    *ok.lock().unwrap() += 1;
                })
                .unwrap_or_else(|e| panic!("submit to {name}: {e}"));
        }
    }

    // Victim: walk the trace one batch at a time with a panic failpoint
    // re-armed before each submit. A trip must surface as the typed
    // PhasePanicked rejection, roll back bit-identically, and succeed
    // on an immediate retry of the *same* batch; a batch whose shape
    // never reaches the failpoint (no insert phase) applies cleanly.
    let (tx, rx) = mpsc::channel();
    let mut trips = 0u64;
    for (i, batch) in traces[0].1.to_batches().into_iter().enumerate() {
        engine
            .arm_failpoint(
                &victim,
                FailPoint {
                    phase: FailPhase::InsertPhase,
                    after_validations: 0,
                    action: FailAction::Panic,
                },
            )
            .expect("arm failpoint");
        let tx2 = tx.clone();
        engine
            .submit(&victim, i as u64 + 1, batch.clone(), move |reply| {
                tx2.send(reply).ok();
            })
            .expect("submit victim batch");
        let reply = rx.recv().expect("victim reply");
        match reply.outcome {
            Ok(_) => {}
            Err(ServeError::Engine(DynFdError::PhasePanicked { ref detail, .. })) => {
                assert!(
                    detail.contains("injected failpoint"),
                    "unexpected panic detail: {detail}"
                );
                trips += 1;
                let tx2 = tx.clone();
                engine
                    .submit(&victim, 5_000 + i as u64, batch, move |reply| {
                        tx2.send(reply).ok();
                    })
                    .expect("resubmit victim batch");
                let retry = rx.recv().expect("victim retry reply");
                assert!(
                    retry.outcome.is_ok(),
                    "retry after rollback must succeed, got {:?}",
                    retry.outcome
                );
            }
            Err(other) => panic!("victim batch {i} failed unexpectedly: {other}"),
        }
    }
    assert!(
        trips > 0,
        "the failpoint never fired — trace has no inserts?"
    );
    engine.quiesce();

    // Every tenant — victim included — lands on the sequential oracle.
    let total_other: u64 = traces
        .iter()
        .skip(1)
        .map(|(_, t)| t.to_batches().len() as u64)
        .sum();
    assert_eq!(*ok_others.lock().unwrap(), total_other);
    for (name, trace) in &traces {
        assert_matches_oracle(&engine, name, trace, "failpoint");
    }
    for (name, _) in traces.iter().skip(1) {
        let m = engine.metrics(name).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(m.rejected, 0, "bystander {name} must see zero rejects");
    }
    let vm = engine.metrics(&victim).expect("victim metrics");
    assert_eq!(vm.rejected, trips, "victim rejects = failpoint trips");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seed-randomized poisoning: whatever the trace set and whichever
    /// tenant is poisoned, the blast radius is exactly that tenant.
    #[test]
    fn poison_blast_radius_is_one_tenant(seed in 0u64..1_000_000, victim in 0usize..3) {
        check_poison_isolation(seed, 3, victim);
    }
}
