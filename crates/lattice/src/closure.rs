//! Armstrong-closure reasoning over a positive cover.
//!
//! The applications the paper motivates — schema normalization [4],
//! query optimization [14] — consume the discovered FDs through
//! implication queries: *does `X -> A` follow?*, *what does `X`
//! determine?*, *which attribute sets are keys?*. This module answers
//! them directly on the maintained [`FdTree`] cover.

use crate::FdTree;
use dynfd_common::{AttrSet, Fd};

/// The attribute closure `X⁺`: all attributes functionally determined
/// by `X` under the FDs in `cover` (including `X` itself).
///
/// Classic fixpoint computation; each pass scans the cover once, and at
/// most `arity` passes run, so the cost is `O(arity · |cover|)`.
pub fn attribute_closure(cover: &FdTree, x: AttrSet, arity: usize) -> AttrSet {
    let mut closure = x;
    loop {
        let mut grew = false;
        for rhs in 0..arity {
            if !closure.contains(rhs) && cover.contains_generalization(closure, rhs) {
                closure.insert(rhs);
                grew = true;
            }
        }
        if !grew {
            return closure;
        }
    }
}

/// Whether `fd` is implied by `cover` (Armstrong implication). For a
/// positive cover of minimal FDs this is a single generalization lookup;
/// the closure-based fallback also accepts non-minimal covers.
pub fn implies(cover: &FdTree, fd: &Fd, arity: usize) -> bool {
    fd.lhs.contains(fd.rhs)
        || cover.contains_generalization(fd.lhs, fd.rhs)
        || attribute_closure(cover, fd.lhs, arity).contains(fd.rhs)
}

/// Whether `x` is a *superkey*: it determines every attribute.
pub fn is_superkey(cover: &FdTree, x: AttrSet, arity: usize) -> bool {
    attribute_closure(cover, x, arity) == AttrSet::full(arity)
}

/// Whether `x` is a *candidate key*: a superkey no proper subset of
/// which is a superkey.
pub fn is_candidate_key(cover: &FdTree, x: AttrSet, arity: usize) -> bool {
    is_superkey(cover, x, arity) && x.iter().all(|a| !is_superkey(cover, x.without(a), arity))
}

/// Enumerates all candidate keys of an `arity`-column relation.
///
/// Uses the textbook reduction: every candidate key must contain the
/// attributes that appear in no FD's RHS (they are underivable), and the
/// search expands LHS attributes only. Worst case exponential in
/// `arity` — like key discovery itself — but heavily pruned in
/// practice. Intended for the narrow relations where key enumeration is
/// meaningful; guard the call on `arity` if unsure.
pub fn candidate_keys(cover: &FdTree, arity: usize) -> Vec<AttrSet> {
    // Attributes never determined by anything: part of every key.
    let mut underivable = AttrSet::empty();
    for a in 0..arity {
        let others = AttrSet::full(arity).without(a);
        if !attribute_closure(cover, others, arity).contains(a) {
            // Nothing (not even everything else) determines `a`.
            underivable.insert(a);
        }
    }
    let mut keys: Vec<AttrSet> = Vec::new();
    // BFS from the seed, level-synchronized so minimality is by level.
    let mut frontier: Vec<AttrSet> = vec![underivable];
    while !frontier.is_empty() {
        let mut next: Vec<AttrSet> = Vec::new();
        for x in frontier {
            if keys.iter().any(|k| k.is_subset_of(&x)) {
                continue; // contains a smaller key: not a candidate
            }
            if is_superkey(cover, x, arity) {
                keys.push(x);
                continue;
            }
            let start = x.last().map_or(0, |a| a + 1);
            // Ascending extension enumerates each superset once; only
            // attributes beyond the seed matter.
            for b in start..arity {
                if !x.contains(b) {
                    next.push(x.with(b));
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    keys.sort_unstable();
    keys
}

/// Minimal FDs of `cover` that violate Boyce–Codd normal form: their
/// LHS is not a superkey (and the FD is non-trivial by construction).
/// An empty result means the schema is in BCNF w.r.t. the current data.
pub fn bcnf_violations(cover: &FdTree, arity: usize) -> Vec<Fd> {
    cover
        .all_fds()
        .into_iter()
        .filter(|fd| !is_superkey(cover, fd.lhs, arity))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(attrs: &[usize]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    fn tree(fds: &[(&[usize], usize)]) -> FdTree {
        fds.iter().map(|&(l, r)| Fd::new(s(l), r)).collect()
    }

    #[test]
    fn closure_fixpoint() {
        // 0 -> 1, 1 -> 2: closure of {0} is {0,1,2}; of {2} just {2}.
        let cover = tree(&[(&[0], 1), (&[1], 2)]);
        assert_eq!(attribute_closure(&cover, s(&[0]), 4), s(&[0, 1, 2]));
        assert_eq!(attribute_closure(&cover, s(&[2]), 4), s(&[2]));
        assert_eq!(
            attribute_closure(&cover, AttrSet::empty(), 4),
            AttrSet::empty()
        );
    }

    #[test]
    fn closure_uses_composite_lhs() {
        // {0,1} -> 2, {2} -> 3.
        let cover = tree(&[(&[0, 1], 2), (&[2], 3)]);
        assert_eq!(attribute_closure(&cover, s(&[0]), 4), s(&[0]));
        assert_eq!(attribute_closure(&cover, s(&[0, 1]), 4), s(&[0, 1, 2, 3]));
    }

    #[test]
    fn implication() {
        let cover = tree(&[(&[0], 1), (&[1], 2)]);
        // Transitivity: 0 -> 2 follows though it is not stored.
        assert!(implies(&cover, &Fd::new(s(&[0]), 2), 3));
        // Trivial FDs always follow.
        assert!(implies(
            &cover,
            &Fd {
                lhs: s(&[1, 2]),
                rhs: 2
            },
            3
        ));
        assert!(!implies(&cover, &Fd::new(s(&[2]), 0), 3));
    }

    #[test]
    fn keys_single() {
        // 0 -> 1, 0 -> 2: {0} is the only candidate key.
        let cover = tree(&[(&[0], 1), (&[0], 2)]);
        assert!(is_superkey(&cover, s(&[0]), 3));
        assert!(is_candidate_key(&cover, s(&[0]), 3));
        assert!(is_superkey(&cover, s(&[0, 1]), 3));
        assert!(!is_candidate_key(&cover, s(&[0, 1]), 3), "not minimal");
        assert_eq!(candidate_keys(&cover, 3), vec![s(&[0])]);
    }

    #[test]
    fn keys_multiple() {
        // Cyclic: 0 -> 1 and 1 -> 0, plus {0} -> 2. Keys: {0} and {1}.
        let cover = tree(&[(&[0], 1), (&[1], 0), (&[0], 2)]);
        assert_eq!(candidate_keys(&cover, 3), vec![s(&[0]), s(&[1])]);
    }

    #[test]
    fn keys_composite() {
        // Nothing determines 0 or 1; {0,1} -> 2. Key: {0,1}.
        let cover = tree(&[(&[0, 1], 2)]);
        assert_eq!(candidate_keys(&cover, 3), vec![s(&[0, 1])]);
    }

    #[test]
    fn keys_with_no_fds() {
        // No FDs at all: the only key is the full attribute set.
        assert_eq!(candidate_keys(&FdTree::new(), 3), vec![s(&[0, 1, 2])]);
    }

    #[test]
    fn keys_with_constant_column() {
        // ∅ -> 2 (constant), 0 -> 1: key is {0}.
        let cover = tree(&[(&[], 2), (&[0], 1)]);
        assert_eq!(candidate_keys(&cover, 3), vec![s(&[0])]);
        // Degenerate: everything constant → the empty set is the key.
        let all_const = tree(&[(&[], 0), (&[], 1)]);
        assert_eq!(candidate_keys(&all_const, 2), vec![AttrSet::empty()]);
    }

    #[test]
    fn bcnf_detection() {
        // zip -> city in people(first, zip, city): {zip} is no superkey
        // → BCNF violation. With a key FD only, no violation.
        let cover = tree(&[(&[1], 2)]);
        assert_eq!(bcnf_violations(&cover, 3), vec![Fd::new(s(&[1]), 2)]);

        let keyed = tree(&[(&[0], 1), (&[0], 2)]);
        assert!(bcnf_violations(&keyed, 3).is_empty());
    }
}
