//! Replays every committed repro file.
//!
//! Any `*.repro.json` under `crates/testkit/repros/` (the directory the
//! fuzz binary writes to when run from the repo root is usually
//! `repros/`; captured bugs worth keeping are moved here) is parsed and
//! replayed under the full runner. A committed repro documents a bug
//! that has since been *fixed*, so replaying it must now pass — each
//! file is a permanent regression test. The test is green when the
//! directory does not exist.

use dynfd_testkit::{check_trace, Repro, RunnerOptions};
use std::path::PathBuf;

#[test]
fn replay_committed_repro_files() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("repros");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // no committed repros yet
    };
    let mut replayed = 0usize;
    for entry in entries {
        let path = entry.expect("readable repros dir").path();
        if !path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".repro.json"))
        {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let repro = Repro::from_json(&text)
            .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
        let opts = RunnerOptions::default();
        if let Err(failure) = check_trace(&repro.trace, &opts) {
            panic!(
                "committed repro {} regressed (originally {}): {failure}",
                path.display(),
                repro.check
            );
        }
        replayed += 1;
    }
    eprintln!("replayed {replayed} committed repro file(s)");
}
