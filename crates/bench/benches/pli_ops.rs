//! Microbenchmarks for the position-list-index maintenance hot path:
//! the per-change cost of Step 1 of the DynFD pipeline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dynfd_common::{RecordId, Schema};
use dynfd_relation::{DynamicRelation, Pli};

/// Identity slot↔rid mapping for standalone PLI benches (slot i holds
/// rid i, as in a churn-free relation).
fn identity_rids(n: u64) -> Vec<RecordId> {
    (0..n).map(RecordId).collect()
}

fn bench_pli_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("pli_insert");
    let rids = identity_rids(10_000);
    for &clusters in &[10u32, 1_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(clusters),
            &clusters,
            |b, &clusters| {
                b.iter_batched(
                    Pli::new,
                    |mut pli| {
                        for i in 0..10_000u64 {
                            pli.insert((i % clusters as u64) as u32, i as u32, RecordId(i), &rids);
                        }
                        pli
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_pli_remove(c: &mut Criterion) {
    let rids = identity_rids(10_000);
    c.bench_function("pli_remove_10k", |b| {
        b.iter_batched(
            || {
                let mut pli = Pli::new();
                for i in 0..10_000u64 {
                    pli.insert((i % 64) as u32, i as u32, RecordId(i), &rids);
                }
                pli
            },
            |mut pli| {
                for i in 0..10_000u64 {
                    pli.remove((i % 64) as u32, i as u32, RecordId(i), &rids);
                }
                pli
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_record_roundtrip(c: &mut Criterion) {
    c.bench_function("relation_insert_delete_1k_rows_8_cols", |b| {
        let schema = Schema::anonymous("bench", 8);
        let rows: Vec<Vec<String>> = (0..1_000)
            .map(|i| {
                (0..8)
                    .map(|c| format!("v{}_{}", c, i % (10 + c * 13)))
                    .collect()
            })
            .collect();
        b.iter(|| {
            let mut rel = DynamicRelation::new(schema.clone());
            for row in &rows {
                rel.insert_row(black_box(row)).unwrap();
            }
            for i in 0..1_000u64 {
                rel.delete_record(RecordId(i)).unwrap();
            }
            rel.len()
        });
    });
}

criterion_group!(
    benches,
    bench_pli_insert,
    bench_pli_remove,
    bench_record_roundtrip
);
criterion_main!(benches);
