//! The write-ahead batch log.
//!
//! One append-only file per engine directory, `batches.wal`:
//!
//! ```text
//! [magic "DYNFDWL1"] [frame] [frame] ...
//! frame := len:u32 LE | crc:u32 LE | payload
//! payload := seq:u64 LE | encoded Batch (see codec)
//! ```
//!
//! `len` counts payload bytes; `crc` is the CRC-32 of the payload.
//! Frames carry strictly consecutive sequence numbers. Every append is
//! `fdatasync`ed before the engine mutates any in-memory state — the
//! redo-log discipline that makes crash recovery possible.
//!
//! [`Wal::scan`] is the tolerant reader: it parses frames until the
//! first torn or corrupt one (short header, impossible length, CRC
//! mismatch, payload that does not decode, non-consecutive sequence
//! number) and reports the corruption with its byte offset instead of
//! failing, so recovery can truncate back to the last valid frame.

use crate::codec::{self, Reader};
use crate::crc::crc32;
use dynfd_relation::Batch;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::process::abort;

/// File magic, first 8 bytes of every WAL.
pub const WAL_MAGIC: [u8; 8] = *b"DYNFDWL1";

/// Name of the WAL file inside an engine directory.
pub const WAL_FILE: &str = "batches.wal";

/// Bytes of the frame header (`len` + `crc`).
const FRAME_HEADER: u64 = 8;

/// Smallest legal payload: a `seq` and an empty batch's op count.
const MIN_PAYLOAD: u32 = 12;

/// An open WAL positioned for appending.
pub struct Wal {
    file: File,
    /// End of the last durable frame (= file size while healthy).
    end: u64,
    /// `fsync`/`fdatasync` calls issued over this handle's lifetime.
    fsyncs: u64,
}

/// One valid frame a scan produced.
pub struct WalFrame {
    /// The frame's batch sequence number.
    pub seq: u64,
    /// The logged batch.
    pub batch: Batch,
    /// Byte offset where this frame starts.
    pub start: u64,
    /// Byte offset one past this frame (the next frame's start).
    pub end: u64,
}

/// What a corruption-tolerant scan found.
pub struct WalScan {
    /// The valid frame prefix, in order.
    pub frames: Vec<WalFrame>,
    /// Byte offset one past the last valid frame — the truncation point.
    pub valid_end: u64,
    /// First corruption encountered, if any: byte offset where the bad
    /// frame starts plus a description. `None` means the file parsed
    /// cleanly to its end.
    pub corruption: Option<WalCorruption>,
}

/// Description of the first invalid frame a scan hit.
#[derive(Debug)]
pub struct WalCorruption {
    /// Byte offset where the bad frame starts.
    pub offset: u64,
    /// Sequence number of the last *valid* frame, if any frame parsed.
    pub last_seq: Option<u64>,
    /// What failed to validate (for logs; the typed error carries only
    /// `seq`/`offset`).
    pub detail: String,
}

impl Wal {
    /// Creates (or truncates) the WAL at `path` and writes the magic.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.sync_all()?;
        Ok(Wal {
            file,
            end: WAL_MAGIC.len() as u64,
            fsyncs: 1,
        })
    }

    /// Opens an existing WAL for appending at `end` (a byte offset a
    /// prior [`Wal::scan`] validated). Anything after `end` — a torn
    /// tail the scan refused — is truncated away immediately.
    pub fn open(path: &Path, end: u64) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut wal = Wal {
            file,
            end,
            fsyncs: 0,
        };
        if wal.file.metadata()?.len() != end {
            wal.rewind_to(end)?;
        }
        Ok(wal)
    }

    /// Byte offset one past the last durable frame.
    pub fn end_offset(&self) -> u64 {
        self.end
    }

    /// `fsync` calls issued by this handle so far.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs
    }

    /// Appends one frame (`seq` + `batch`) and `fdatasync`s it; returns
    /// the number of bytes the frame occupies.
    ///
    /// `kill_at_byte` is the deterministic crash hook of the test
    /// harness: when the frame would extend the file past that absolute
    /// offset, only the bytes up to it are written (durably) and the
    /// process aborts — a simulated power cut mid-append.
    pub fn append(
        &mut self,
        seq: u64,
        batch: &Batch,
        kill_at_byte: Option<u64>,
    ) -> io::Result<u64> {
        let mut payload = Vec::new();
        codec::put_u64(&mut payload, seq);
        codec::encode_batch(&mut payload, batch);
        let mut frame = Vec::with_capacity(payload.len() + FRAME_HEADER as usize);
        codec::put_u32(&mut frame, payload.len() as u32);
        codec::put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);

        if let Some(kill) = kill_at_byte {
            if kill < self.end + frame.len() as u64 {
                let keep = kill.saturating_sub(self.end) as usize;
                self.file.seek(SeekFrom::Start(self.end))?;
                self.file.write_all(&frame[..keep])?;
                self.file.sync_data()?;
                abort(); // simulated power cut: torn frame is on disk
            }
        }

        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.end += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Rewinds the log to `offset`, durably discarding every frame after
    /// it — the rejected-batch and corruption-truncation path.
    pub fn rewind_to(&mut self, offset: u64) -> io::Result<()> {
        self.file.set_len(offset)?;
        self.file.sync_all()?;
        self.fsyncs += 1;
        self.end = offset;
        Ok(())
    }

    /// Empties the log back to just the magic (snapshot boundary).
    pub fn truncate_all(&mut self) -> io::Result<()> {
        self.rewind_to(WAL_MAGIC.len() as u64)
    }

    /// Forces file metadata *and* data to stable storage. Appends
    /// already `fdatasync` their payload; this is the shutdown-path
    /// belt-and-suspenders that also covers metadata (file length)
    /// after a rewind, so a clean exit leaves nothing in flight.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Reads and validates `path` frame by frame, stopping at the first
    /// torn or corrupt frame. Never fails on *content* — only real I/O
    /// errors (missing file, permission) surface as `Err`.
    pub fn scan(path: &Path) -> io::Result<WalScan> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Ok(WalScan {
                frames: Vec::new(),
                valid_end: 0,
                corruption: Some(WalCorruption {
                    offset: 0,
                    last_seq: None,
                    detail: "missing or damaged file magic".into(),
                }),
            });
        }

        let mut frames: Vec<WalFrame> = Vec::new();
        let mut offset = WAL_MAGIC.len() as u64;
        let corruption = loop {
            if offset == bytes.len() as u64 {
                break None; // clean end
            }
            match parse_frame(&bytes, offset, frames.last().map(|f| f.seq)) {
                Ok((seq, batch, next_offset)) => {
                    frames.push(WalFrame {
                        seq,
                        batch,
                        start: offset,
                        end: next_offset,
                    });
                    offset = next_offset;
                }
                Err(detail) => {
                    break Some(WalCorruption {
                        offset,
                        last_seq: frames.last().map(|f| f.seq),
                        detail,
                    });
                }
            }
        };
        Ok(WalScan {
            frames,
            valid_end: offset,
            corruption,
        })
    }
}

/// Validates one frame starting at `offset`; returns `(seq, batch, end
/// offset)` or a description of why the frame is invalid.
fn parse_frame(
    bytes: &[u8],
    offset: u64,
    prev_seq: Option<u64>,
) -> Result<(u64, Batch, u64), String> {
    let rest = &bytes[offset as usize..];
    let mut header = Reader::new(rest);
    let len = header
        .u32()
        .map_err(|_| format!("torn frame header ({} trailing bytes)", rest.len()))?;
    let crc = header
        .u32()
        .map_err(|_| format!("torn frame header ({} trailing bytes)", rest.len()))?;
    if len < MIN_PAYLOAD {
        return Err(format!("impossible payload length {len}"));
    }
    let payload = header
        .bytes(len as usize)
        .map_err(|_| format!("torn frame: payload length {len} exceeds file"))?;
    let actual = crc32(payload);
    if actual != crc {
        return Err(format!(
            "CRC mismatch: stored {crc:#010x}, computed {actual:#010x}"
        ));
    }
    let mut r = Reader::new(payload);
    let seq = r.u64().map_err(|e| format!("payload: {e}"))?;
    let batch = codec::decode_batch(&mut r).map_err(|e| format!("payload: {e}"))?;
    if !r.is_exhausted() {
        return Err(format!("{} undecoded payload bytes", r.remaining()));
    }
    if let Some(prev) = prev_seq {
        if seq != prev + 1 {
            return Err(format!("sequence jump: frame {seq} after frame {prev}"));
        }
    }
    Ok((seq, batch, offset + FRAME_HEADER + len as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::RecordId;
    use dynfd_relation::Batch;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("dynfd-wal-test-{}-{name}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn batch(i: u64) -> Batch {
        let mut b = Batch::new();
        b.insert(vec![format!("row{i}"), "x".into()]);
        b.delete(RecordId(i));
        b
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::create(&path).unwrap();
        for seq in 1..=5u64 {
            wal.append(seq, &batch(seq), None).unwrap();
        }
        let scan = Wal::scan(&path).unwrap();
        assert!(scan.corruption.is_none());
        assert_eq!(scan.valid_end, wal.end_offset());
        assert_eq!(scan.frames.len(), 5);
        for (i, frame) in scan.frames.iter().enumerate() {
            assert_eq!(frame.seq, i as u64 + 1);
            assert_eq!(frame.batch, batch(frame.seq));
            assert_eq!(
                frame.end,
                scan.frames.get(i + 1).map_or(scan.valid_end, |n| n.start)
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_torn_tail_truncates_to_a_frame_boundary() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path).unwrap();
        let mut boundaries = vec![wal.end_offset()];
        for seq in 1..=3u64 {
            wal.append(seq, &batch(seq), None).unwrap();
            boundaries.push(wal.end_offset());
        }
        let full = std::fs::read(&path).unwrap();
        for cut in WAL_MAGIC.len()..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = Wal::scan(&path).unwrap();
            let expected_end = *boundaries.iter().rfind(|&&b| b <= cut as u64).unwrap();
            assert_eq!(scan.valid_end, expected_end, "cut at {cut}");
            // A cut exactly on a frame boundary looks like a clean,
            // shorter log (nothing after it ever reported durable);
            // any mid-frame cut must be flagged as torn.
            if !boundaries.contains(&(cut as u64)) {
                assert!(scan.corruption.is_some(), "cut at {cut} must be flagged");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let path = tmp("bitflip");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &batch(1), None).unwrap();
        wal.append(2, &batch(2), None).unwrap();
        let full = std::fs::read(&path).unwrap();
        let clean = Wal::scan(&path).unwrap();
        assert_eq!(clean.frames.len(), 2);
        for byte in 0..full.len() {
            let mut flipped = full.clone();
            flipped[byte] ^= 0x10;
            std::fs::write(&path, &flipped).unwrap();
            let scan = Wal::scan(&path).unwrap();
            // A flip may shorten the valid prefix, never extend it, and
            // scanning must flag it (a flipped byte always lands in the
            // magic, a header, or a checksummed payload).
            assert!(scan.corruption.is_some(), "flip at byte {byte} undetected");
            assert!(scan.frames.len() < 2 || scan.valid_end <= clean.valid_end);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kill_at_byte_is_honored_by_offset_math() {
        // `append` aborts the process on the kill path, so the hook
        // itself is exercised by the child-process crash harness; here
        // we only pin the arithmetic: a kill offset beyond the frame
        // leaves the append untouched.
        let path = tmp("kill-math");
        let mut wal = Wal::create(&path).unwrap();
        let len = wal.append(1, &batch(1), Some(1 << 30)).unwrap();
        assert_eq!(wal.end_offset(), WAL_MAGIC.len() as u64 + len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewind_discards_tail_frames() {
        let path = tmp("rewind");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &batch(1), None).unwrap();
        let boundary = wal.end_offset();
        wal.append(2, &batch(2), None).unwrap();
        wal.rewind_to(boundary).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert!(scan.corruption.is_none());
        assert_eq!(scan.frames.len(), 1);
        // The log stays appendable after a rewind, reusing seq 2.
        wal.append(2, &batch(7), None).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(
            scan.frames.iter().map(|f| f.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(scan.frames[1].batch, batch(7));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sequence_jumps_are_corruption() {
        let path = tmp("seqjump");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &batch(1), None).unwrap();
        let boundary = wal.end_offset();
        wal.append(3, &batch(3), None).unwrap(); // skips seq 2
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_end, boundary);
        let corruption = scan.corruption.unwrap();
        assert_eq!(corruption.offset, boundary);
        assert_eq!(corruption.last_seq, Some(1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn damaged_magic_invalidates_whole_file() {
        let path = tmp("magic");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(1, &batch(1), None).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_end, 0);
        assert!(scan.corruption.unwrap().detail.contains("magic"));
        std::fs::remove_file(&path).unwrap();
    }
}
