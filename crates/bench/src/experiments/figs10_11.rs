//! Figures 10 and 11 — strategy compositions across batch sizes.
//!
//! Runtime of each strategy set for batch sizes 10 → 1,000 on `cpu`
//! (Figure 10) and `single` (Figure 11). Expected shape vs. the paper:
//! the all-strategies composition stays best or close to best across
//! the whole batch-size range.

use crate::experiments::{Ctx, CHANGE_CAP};
use crate::report::{ms, Table};
use crate::runner::run_dynfd;
use crate::strategies::strategy_sets;

/// Batch sizes swept (matching Figure 6's sweep).
pub const BATCH_SIZES: &[usize] = &[10, 50, 100, 500, 1000];

/// Cap on batches per cell (see `fig6::MAX_BATCHES` for the rationale;
/// the runtime column is reported per batch-capped run, and all
/// strategy rows of a column process identical batches, so relative
/// comparisons — the figure's entire point — are unaffected).
pub const MAX_BATCHES: usize = 100;

/// Runs Figure 10 (`cpu`).
pub fn run_fig10(ctx: &Ctx) -> Table {
    run_on(ctx, "cpu")
}

/// Runs Figure 11 (`single`).
pub fn run_fig11(ctx: &Ctx) -> Table {
    run_on(ctx, "single")
}

fn run_on(ctx: &Ctx, name: &str) -> Table {
    let data = ctx.dataset(name);
    let mut header: Vec<String> = vec!["Strategies".into()];
    header.extend(BATCH_SIZES.iter().map(|b| format!("{name}@{b}[ms]")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for (label, config) in strategy_sets() {
        let mut cells = vec![label.to_string()];
        for &batch_size in BATCH_SIZES {
            let limit = CHANGE_CAP.min(batch_size.saturating_mul(MAX_BATCHES));
            let outcome = run_dynfd(&data, batch_size, Some(limit), config);
            cells.push(ms(outcome.total.as_secs_f64() * 1_000.0));
        }
        table.row(cells);
    }
    table
}
