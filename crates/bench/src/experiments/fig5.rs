//! Figure 5 — per-batch runtimes on `single` (batch size 100).
//!
//! The paper's plot shows a flat default batch time with occasional
//! spikes orders of magnitude taller (batches whose FDs actually
//! change). We emit the full series as CSV and summarize the spike
//! structure in the printed table.

use crate::experiments::Ctx;
use crate::report::{ms, Table};
use crate::runner::run_dynfd;
use dynfd_core::DynFdConfig;

/// Runs the experiment; returns (summary table, per-batch series table).
pub fn run(ctx: &Ctx) -> (Table, Table) {
    let data = ctx.dataset("single");
    let outcome = run_dynfd(&data, 100, None, DynFdConfig::default());

    let mut series = Table::new(&["batch", "time_ms"]);
    for (i, t) in outcome.batch_times.iter().enumerate() {
        series.row(vec![
            i.to_string(),
            format!("{:.3}", t.as_secs_f64() * 1_000.0),
        ]);
    }

    let mut sorted = outcome.batch_times.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2].as_secs_f64() * 1_000.0;
    let max = sorted.last().map_or(0.0, |t| t.as_secs_f64() * 1_000.0);
    let spikes = outcome
        .batch_times
        .iter()
        .filter(|t| t.as_secs_f64() * 1_000.0 > 10.0 * median.max(f64::MIN_POSITIVE))
        .count();

    let mut summary = Table::new(&[
        "batches",
        "median[ms]",
        "max[ms]",
        "max/median",
        "spikes(>10x median)",
    ]);
    summary.row(vec![
        outcome.batch_times.len().to_string(),
        ms(median),
        ms(max),
        format!("{:.1}", if median > 0.0 { max / median } else { 0.0 }),
        spikes.to_string(),
    ]);
    (summary, series)
}
