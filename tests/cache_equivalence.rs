//! The PLI-intersection cache is pure acceleration: with an
//! eviction-heavy budget squeezing the cache on every merge, the cached
//! validator must return the same verdicts as the plain one, and the
//! engine with the cache on must maintain the same covers as with it
//! off. Witness pairs are allowed to differ (the cached path may pick a
//! different pivot and therefore meet a different violating pair first),
//! so violations are checked for *soundness* against the relation
//! instead of bit-equality.

use dynfd::common::{AttrSet, RecordId, Schema};
use dynfd::core::{DynFd, DynFdConfig};
use dynfd::relation::{
    validate_many, validate_many_cached, Batch, ChangeOp, DynamicRelation, PliCache, RhsOutcome,
    ValidationJob, ValidationOptions,
};
use proptest::prelude::*;

const COLS: usize = 5;
const DOMAIN: u8 = 3;

/// A budget small enough that a handful of 2-attribute partitions
/// overflows it: every level merge evicts, so the proptests exercise
/// the build/evict/rebuild churn path rather than the steady state.
const TINY_BUDGET: usize = 2_048;

fn arb_row() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec((0..DOMAIN).prop_map(|v| format!("v{v}")), COLS)
}

/// All `lhs -> rhs` jobs of the given LHS arity over `COLS` attributes,
/// with the full complement as RHS — the shape the engine's lattice
/// levels emit.
fn level_jobs(arity: usize) -> Vec<ValidationJob> {
    let mut jobs = Vec::new();
    let mut emit = |lhs: AttrSet| {
        let rhs: AttrSet = (0..COLS).filter(|r| !lhs.contains(*r)).collect();
        jobs.push((lhs, rhs));
    };
    match arity {
        2 => {
            for a in 0..COLS {
                for b in (a + 1)..COLS {
                    emit([a, b].into_iter().collect());
                }
            }
        }
        _ => {
            for a in 0..COLS {
                for b in (a + 1)..COLS {
                    for c in (b + 1)..COLS {
                        emit([a, b, c].into_iter().collect());
                    }
                }
            }
        }
    }
    jobs
}

/// Panics unless `(a, b)` is a genuine violation of `lhs -> rhs` in
/// `rel`: both alive, agreeing on every LHS attribute, differing on the
/// RHS.
fn assert_witness_sound(rel: &DynamicRelation, lhs: AttrSet, rhs: usize, a: RecordId, b: RecordId) {
    let ra = rel.compressed(a).expect("witness record is alive");
    let rb = rel.compressed(b).expect("witness record is alive");
    for attr in lhs.iter() {
        assert_eq!(ra[attr], rb[attr], "witness disagrees on LHS attr {attr}");
    }
    assert_ne!(ra[rhs], rb[rhs], "witness agrees on RHS attr {rhs}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Verdict equivalence at the validator layer: plain `validate_many`
    /// versus `validate_many_cached` under an eviction-heavy budget,
    /// both cold (building entries) and warm (hitting / re-building
    /// whatever survived eviction).
    #[test]
    fn cached_validation_matches_plain_under_eviction(
        rows in proptest::collection::vec(arb_row(), 1..40),
    ) {
        let rel = DynamicRelation::from_rows(Schema::anonymous("c", COLS), &rows).unwrap();
        let full = ValidationOptions::full();
        let mut cache = PliCache::new(TINY_BUDGET);
        for arity in [2usize, 3] {
            let jobs = level_jobs(arity);
            let plain = validate_many(&rel, &jobs, &full, 1);
            for round in 0..2 {
                let cached = validate_many_cached(&rel, &jobs, &full, 1, 1, &mut cache);
                prop_assert_eq!(plain.len(), cached.len());
                for (p, c) in plain.iter().zip(&cached) {
                    prop_assert_eq!(p.lhs, c.lhs);
                    for ((pr, po), (cr, co)) in p.outcomes.iter().zip(&c.outcomes) {
                        prop_assert_eq!(pr, cr);
                        prop_assert_eq!(
                            po.is_valid(),
                            co.is_valid(),
                            "arity {} round {}: {:?} -> {} disagrees",
                            arity,
                            round,
                            p.lhs,
                            pr
                        );
                        if let RhsOutcome::Violated(a, b) = *co {
                            assert_witness_sound(&rel, c.lhs, *cr, a, b);
                        }
                    }
                }
            }
        }
        // The eviction pass runs at every merge, so the cache can never
        // settle above its budget.
        prop_assert!(cache.bytes() <= TINY_BUDGET);
    }

    /// Cover equivalence at the engine layer: the default configuration
    /// with the cache squeezed by a tiny budget versus the cache turned
    /// off entirely, across a random batch script.
    #[test]
    fn engine_covers_match_with_cache_on_and_off(
        initial in proptest::collection::vec(arb_row(), 0..10),
        inserts in proptest::collection::vec(arb_row(), 1..20),
        batch_size in 1usize..6,
    ) {
        let rel = DynamicRelation::from_rows(Schema::anonymous("c", COLS), &initial).unwrap();
        let squeezed = DynFdConfig {
            pli_cache: true,
            pli_cache_bytes: TINY_BUDGET,
            ..DynFdConfig::default()
        };
        let disabled = DynFdConfig {
            pli_cache: false,
            ..DynFdConfig::default()
        };
        let mut on = DynFd::new(rel.clone(), squeezed);
        let mut off = DynFd::new(rel, disabled);

        // Interleave inserts with deletes of every third live record so
        // both the insert and delete phases run under the cache.
        let mut ops = Vec::new();
        for (i, row) in inserts.iter().enumerate() {
            ops.push(ChangeOp::Insert(row.clone()));
            if i % 3 == 2 {
                // The id the i-th insert just received.
                ops.push(ChangeOp::Delete(RecordId(initial.len() as u64 + i as u64)));
            }
        }
        for batch in Batch::chunk(ops, batch_size) {
            let r_on = on.apply_batch(&batch).unwrap();
            let r_off = off.apply_batch(&batch).unwrap();
            prop_assert_eq!(on.positive_cover(), off.positive_cover());
            prop_assert_eq!(on.negative_cover(), off.negative_cover());
            prop_assert_eq!(&r_on.added, &r_off.added);
            prop_assert_eq!(&r_on.removed, &r_off.removed);
            // The disabled engine must never touch the cache.
            prop_assert_eq!(r_off.metrics.cache_hits, 0);
            prop_assert_eq!(r_off.metrics.cache_misses, 0);
            prop_assert_eq!(r_off.metrics.cache_bytes, 0);
        }
        on.verify_consistency().expect("cache-on consistency");
        off.verify_consistency().expect("cache-off consistency");
    }
}

/// Deterministic sanity check that [`TINY_BUDGET`] lives up to its
/// name: a modest uniform relation overflows it and forces evictions,
/// so the proptests above genuinely run in the churn regime.
#[test]
fn tiny_budget_forces_evictions() {
    let rows: Vec<Vec<String>> = (0..200)
        .map(|i| {
            (0..COLS)
                .map(|c| format!("v{}", (i * (c + 3)) % 7))
                .collect()
        })
        .collect();
    let rel = DynamicRelation::from_rows(Schema::anonymous("e", COLS), &rows).unwrap();
    let mut cache = PliCache::new(TINY_BUDGET);
    let jobs = level_jobs(2);
    let full = ValidationOptions::full();
    for _ in 0..2 {
        let _ = validate_many_cached(&rel, &jobs, &full, 1, 1, &mut cache);
    }
    let stats = cache.stats();
    assert!(stats.misses > 0, "no builds at all: {stats:?}");
    assert!(stats.evictions > 0, "budget never overflowed: {stats:?}");
    assert!(
        cache.bytes() <= TINY_BUDGET,
        "eviction left the cache over budget: {} bytes in {} entries",
        cache.bytes(),
        cache.len()
    );
}
