//! End-to-end batch-processing benchmarks: the cost of one
//! `DynFd::apply_batch` under different change mixes and pruning
//! configurations (the microbench companion to Figures 8–11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynfd_bench::runner::run_dynfd;
use dynfd_bench::strategies::strategy_sets;
use dynfd_core::DynFdConfig;
use dynfd_datagen::{DatasetProfile, GeneratedDataset};

fn profile(name: &'static str, ins: f64, del: f64, upd: f64) -> DatasetProfile {
    DatasetProfile {
        name,
        columns: 8,
        initial_rows: 500,
        changes: 1_000,
        insert_pct: ins,
        delete_pct: del,
        update_pct: upd,
        update_columns: 2,
        seed: 0xBE7C,
        bursts: 0,
        burst_len: 0,
    }
}

fn bench_change_mixes(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_1000_changes_batch100");
    group.sample_size(10);
    for (label, p) in [
        ("insert_heavy", profile("ins", 90.0, 5.0, 5.0)),
        ("delete_heavy", profile("del", 10.0, 60.0, 30.0)),
        ("update_heavy", profile("upd", 5.0, 5.0, 90.0)),
    ] {
        let data = GeneratedDataset::generate(&p);
        group.bench_with_input(BenchmarkId::from_parameter(label), &data, |b, data| {
            b.iter(|| run_dynfd(data, 100, None, DynFdConfig::default()).total)
        });
    }
    group.finish();
}

fn bench_strategy_ablation(c: &mut Criterion) {
    let data = GeneratedDataset::generate(&profile("mix", 40.0, 20.0, 40.0));
    let mut group = c.benchmark_group("strategy_ablation_batch100");
    group.sample_size(10);
    for (label, config) in strategy_sets() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, &config| {
            b.iter(|| run_dynfd(&data, 100, None, config).total)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_change_mixes, bench_strategy_ablation);
criterion_main!(benches);
