//! HyFD's level-wise validation phase.
//!
//! The positive cover induced from the (incomplete) negative cover is a
//! set of *candidates*: every true minimal FD has a generalization among
//! them, but some candidates are still too general. The validator walks
//! the cover bottom-up; violations discovered by the PLI validator yield
//! full agree sets that refine both covers (dependency induction), and
//! when a level's invalid ratio exceeds the switching threshold the
//! sampler is resumed — the hybrid "back to row-based" move.

use super::{HyFdConfig, HyFdStats, Sampler};
use dynfd_common::AttrSet;
use dynfd_lattice::{specialize_into, FdTree};
use dynfd_relation::{agree_set, validate, DynamicRelation, ValidationOptions};
use std::collections::BTreeMap;

/// Incorporates the witnessed agree set `agree` into both covers: every
/// `agree -> y` with `y ∉ agree` is a non-FD; the negative cover gains
/// the maximal ones and the positive cover specializes accordingly.
pub(super) fn apply_non_fd_witness(
    arity: usize,
    agree: AttrSet,
    fds: &mut FdTree,
    neg: &mut FdTree,
) {
    for y in 0..arity {
        if !agree.contains(y) {
            neg.add_maximal_evicting(agree, y);
            specialize_into(fds, agree, y, arity);
        }
    }
}

/// Validates the candidate cover `fds` level by level until every entry
/// is confirmed against `rel`, refining `neg` along the way.
pub(super) fn validate_cover(
    rel: &DynamicRelation,
    fds: &mut FdTree,
    neg: &mut FdTree,
    sampler: &mut Sampler,
    cfg: &HyFdConfig,
    stats: &mut HyFdStats,
) {
    let arity = rel.arity();
    let full = ValidationOptions::full();
    let mut level = 0usize;

    while fds.max_level().is_some_and(|max| level <= max) {
        let snapshot = fds.get_level(level);
        // Validate all RHSs sharing an LHS in one pass.
        let mut groups: BTreeMap<AttrSet, AttrSet> = BTreeMap::new();
        for fd in &snapshot {
            groups
                .entry(fd.lhs)
                .or_insert_with(AttrSet::empty)
                .insert(fd.rhs);
        }

        let mut total = 0usize;
        let mut invalid = 0usize;
        for (lhs, rhs_set) in groups {
            // Induction triggered by earlier groups may have evicted
            // some candidates of this snapshot already.
            let live: AttrSet = rhs_set.iter().filter(|&r| fds.contains(lhs, r)).collect();
            if live.is_empty() {
                continue;
            }
            stats.validations += 1;
            total += live.len();
            let result = validate(rel, lhs, live, &full);
            for (_, a, b) in result.violations() {
                invalid += 1;
                let agree = agree_set(rel, a, b).expect("live witnesses");
                apply_non_fd_witness(arity, agree, fds, neg);
            }
        }

        // Hybrid switch: a noisy level means the negative cover is still
        // far from complete — cheap sampling will likely find many more
        // violations than per-candidate validation.
        if total > 0 && invalid as f64 / total as f64 > cfg.invalid_ratio_switch {
            stats.switches += 1;
            let fresh = sampler.run(rel, neg, cfg.sampling_efficiency_threshold, stats);
            for agree in fresh {
                for y in 0..arity {
                    if !agree.contains(y) {
                        specialize_into(fds, agree, y, arity);
                    }
                }
            }
        }
        level += 1;
    }
}
