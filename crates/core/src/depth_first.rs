//! Optimistic depth-first searches (§5.3, Algorithm 5).
//!
//! When a delete batch turns many non-FDs valid, their generalizations
//! cascade for several lattice levels — an exponential number of
//! candidates in the worst case. The new non-FD frontier is, however,
//! often covered by a few *small-LHS* maximal non-FDs. The optimistic
//! depth-first search races ahead of the level-wise traversal: starting
//! from a sample of the newly valid FDs it recursively validates their
//! generalizations, and every valid FD found deduces covers via
//! Algorithm 6 — deepest first, because a more general FD deduces
//! strictly more.

use crate::{BatchMetrics, DynFd};
use dynfd_common::{AttrSet, Fd};
use dynfd_relation::{validate_with, ValidationOptions, ValidatorScratch};
use std::collections::HashSet;

impl DynFd {
    /// Launches depth-first searches from a deterministic
    /// `dfs_seed_fraction` sample of the newly valid FDs (at least one).
    ///
    /// The paper samples 10 % of the seeds because the searches are "an
    /// optimistic optimization attempt and should not change the search
    /// strategy entirely" — breadth-first remains the backbone. We take
    /// evenly strided seeds so runs are reproducible.
    pub(crate) fn depth_first_from_seeds(&mut self, seeds: &[Fd], metrics: &mut BatchMetrics) {
        if seeds.is_empty() {
            return;
        }
        let n = seeds.len();
        let k = ((n as f64 * self.config.dfs_seed_fraction).ceil() as usize).clamp(1, n);
        let stride = n.div_ceil(k);
        let mut visited: HashSet<Fd> = HashSet::new();
        // One scratch serves the whole search: the recursion is
        // inherently sequential (each validation depends on the verdicts
        // before it), so the win here is allocation reuse, not threads.
        let mut scratch = ValidatorScratch::new();
        for idx in (0..n).step_by(stride) {
            metrics.dfs_seeds += 1;
            self.depth_first(seeds[idx], &mut visited, &mut scratch, metrics);
        }
    }

    /// Algorithm 5: recursive depth-first traversal from the valid FD
    /// `fd`. Every direct generalization that is implied by the positive
    /// cover or validates successfully is explored; afterwards `fd`
    /// deduces both covers (Algorithm 6).
    ///
    /// The `visited` memo is an implementation addition: different
    /// recursion paths reach the same generalization (the lattice is not
    /// a tree), and re-validating it would only repeat work.
    fn depth_first(
        &mut self,
        fd: Fd,
        visited: &mut HashSet<Fd>,
        scratch: &mut ValidatorScratch,
        metrics: &mut BatchMetrics,
    ) {
        if !visited.insert(fd) {
            return;
        }
        for r in fd.lhs.iter() {
            let new_fd = Fd::new(fd.lhs.without(r), fd.rhs);
            // Line 4: an FD implied by the positive cover is true without
            // validation; otherwise validate against the full relation.
            let proceed = if self.fds.contains_generalization(new_fd.lhs, new_fd.rhs) {
                true
            } else if visited.contains(&new_fd) {
                false // already explored (and deduced) via another path
            } else {
                metrics.non_fd_validations += 1;
                validate_with(
                    &self.rel,
                    new_fd.lhs,
                    AttrSet::single(new_fd.rhs),
                    &ValidationOptions::full(),
                    scratch,
                )
                .all_valid()
            };
            if proceed {
                self.depth_first(new_fd, visited, scratch, metrics);
            }
        }
        // Line 6: deduction last — generalizations processed above have
        // already deduced the lion's share.
        self.apply_valid_fd(fd);
    }
}
