//! # dynfd-core
//!
//! **DynFD** — the first algorithm to discover *and maintain* the
//! complete, exact set of minimal, non-trivial functional dependencies
//! of a dynamic dataset (Schirmer et al., EDBT 2019).
//!
//! A [`DynFd`] instance owns a
//! [`DynamicRelation`](dynfd_relation::DynamicRelation) together with a
//! **positive cover** (all minimal FDs) and a **negative cover** (all
//! maximal non-FDs), both stored as FD prefix trees. Each call to
//! [`DynFd::apply_batch`] executes the four-step pipeline of the paper's
//! Figure 1:
//!
//! 1. update the indexed data structures (dictionaries, PLIs,
//!    compressed records) with the batch's deletes and inserts;
//! 2. process **deletes** against the negative cover — resolved
//!    violations promote non-FDs to FDs, generalizing bottom-up
//!    (Algorithm 4), accelerated by *validation pruning* (cached
//!    violating record pairs, Section 5.2) and optimistic *depth-first
//!    searches* (Algorithm 5, Section 5.3);
//! 3. process **inserts** against the positive cover — new violations
//!    demote FDs to non-FDs, specializing top-down (Algorithm 2),
//!    accelerated by *cluster pruning* (Section 4.2) and the progressive
//!    *violation search* (Section 4.3);
//! 4. signal the changed FDs to the caller ([`BatchResult`]).
//!
//! All four pruning strategies can be toggled independently through
//! [`DynFdConfig`], which is how the ablation experiments of Section 6.5
//! (Figures 8–11) are reproduced.

#![warn(missing_docs)]

mod config;
mod deletes;
mod depth_first;
mod diff;
mod errors;
mod failpoint;
mod induction;
mod inserts;
mod metrics;
mod monitor;
mod ordering;
mod pipeline;
mod violation_search;
mod violations;

pub use config::{ConsistencyLevel, DynFdConfig, SearchMode};
pub use diff::{BatchResult, FdChange};
pub use errors::{DynFdError, DynFdResult};
pub use failpoint::{FailAction, FailPhase, FailPoint};
pub use metrics::BatchMetrics;
pub use monitor::{FdMonitor, MonitorReport};
pub use pipeline::{CachePressure, DynFd};
pub use violations::ViolationStore;

#[cfg(test)]
mod tests;
