//! Child-process crash harness: kill a durable engine mid-write at
//! deterministic points, recover, and diff against a fresh replay.
//!
//! Each scenario spawns the `crash_child` binary with a
//! [`CrashPlan`](dynfd_persist::CrashPlan) that `abort()`s the process
//! with a partial write durably on disk — mid-WAL-frame, right after a
//! frame fsync (before the apply), or mid-snapshot-temp-file. The
//! parent then recovers the directory *in this process* and checks:
//!
//! 1. recovery returns a typed report — it never panics, whatever the
//!    kill left behind;
//! 2. the recovered covers and relation are bit-identical to a fresh
//!    in-memory engine that replayed the same batch prefix
//!    (`DynFd::logical_divergence == None`), and the recovered
//!    violation annotations are valid witnessing pairs (the exact pairs
//!    are cache-path-dependent — see `DynFd::logical_divergence`);
//! 3. resuming the remaining batches lands on the same final covers as
//!    an uninterrupted run.
//!
//! The scenario grid is fixed-seed: the same ~30 kills run on every
//! machine, covering mid-frame byte kills, post-fsync kills between
//! log and apply, mid-snapshot kills (leftover `snapshot.tmp`), and —
//! via the `serve-drain` child mode — kills inside the multi-tenant
//! serve engine's shutdown drain window, where a mixed backlog of
//! tenants is being flushed to per-tenant WALs. The
//! `evict-drain`/`evict-persist`/`evict-snap` modes add kills inside a
//! **live tenant eviction** (after the victim's FIFO drained, after
//! its release snapshot synced, and mid-release-snapshot), proving an
//! evicted tenant re-opens to its exact durable prefix and bystanders
//! are never corrupted.

use dynfd_core::{DynFd, DynFdConfig};
use dynfd_persist::{wal_path, FdEngine};
use dynfd_testkit::{tenant_traces, Trace};
use std::path::{Path, PathBuf};
use std::process::Command;

const SEED: u64 = 77;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dynfd-crash-harness-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(snapshot_every: usize) -> DynFdConfig {
    DynFdConfig {
        snapshot_every,
        ..DynFdConfig::default()
    }
}

/// Fresh in-memory oracle: the trace's initial relation plus its first
/// `prefix` batches.
fn fresh_prefix(trace: &Trace, prefix: usize, config: DynFdConfig) -> DynFd {
    let mut oracle = DynFd::new(trace.to_relation(), config);
    for batch in trace.to_batches().iter().take(prefix) {
        oracle.apply_batch(batch).expect("trace batches are valid");
    }
    oracle
}

/// Runs `crash_child` on `dir`; returns `true` if the child died (the
/// planned crash fired) and `false` on clean exit 0 (plan was vacuous
/// for this trace — e.g. a kill byte beyond the final WAL size).
fn spawn_child(dir: &Path, case: u64, snapshot_every: usize, mode: Option<(&str, u64)>) -> bool {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crash_child"));
    cmd.arg(dir)
        .arg(SEED.to_string())
        .arg(case.to_string())
        .arg(snapshot_every.to_string());
    if let Some((mode, value)) = mode {
        cmd.arg(mode).arg(value.to_string());
    }
    let status = cmd.status().expect("spawn crash_child");
    if status.success() {
        return false;
    }
    // An abort is a signal death on unix (no exit code) or a nonzero
    // code elsewhere; usage/setup errors use codes 1/2 and are bugs.
    assert_ne!(status.code(), Some(1), "child failed outside the kill");
    assert_ne!(status.code(), Some(2), "child usage error");
    true
}

/// The shared verification: recover `dir`, check the bit-identical
/// prefix property, resume the rest of the trace, check the final
/// state. Returns the number of batches the recovery replayed.
fn recover_and_verify(dir: &Path, case: u64, snapshot_every: usize, label: &str) -> usize {
    let trace = Trace::for_case(SEED, case);
    let config = config(snapshot_every);
    let (mut recovered, report) = FdEngine::recover_with_config(dir, config)
        .unwrap_or_else(|e| panic!("{label}: recovery must succeed, got {e}"));
    let batches = trace.to_batches();
    let durable_prefix = recovered.seq() as usize;
    assert!(
        durable_prefix <= batches.len(),
        "{label}: recovered seq {durable_prefix} beyond trace length"
    );
    let oracle = fresh_prefix(&trace, durable_prefix, config);
    assert_eq!(
        oracle.logical_divergence(recovered.dynfd()),
        None,
        "{label}: recovered state must equal a fresh replay of {durable_prefix} batches"
    );
    recovered
        .dynfd()
        .verify_annotations()
        .unwrap_or_else(|e| panic!("{label}: recovered annotations invalid: {e}"));
    for batch in &batches[durable_prefix..] {
        recovered
            .apply_batch(batch)
            .unwrap_or_else(|e| panic!("{label}: resume rejected a valid batch: {e}"));
    }
    let full = fresh_prefix(&trace, batches.len(), config);
    assert_eq!(
        full.logical_divergence(recovered.dynfd()),
        None,
        "{label}: resumed state must equal an uninterrupted run"
    );
    report.replayed_batches
}

#[test]
fn kills_mid_wal_frame_recover_bit_identical() {
    // Mid-frame byte kills: torn frames at assorted offsets, pure-WAL
    // recovery (no periodic snapshots) and snapshotting runs.
    let mut crashes = 0;
    for (case, kill_byte) in [
        (0u64, 9u64),
        (0, 40),
        (0, 97),
        (1, 23),
        (1, 150),
        (2, 64),
        (2, 301),
        (3, 33),
        (3, 210),
        (4, 77),
    ] {
        for snapshot_every in [0usize, 2] {
            let tag = format!("wal-{case}-{kill_byte}-{snapshot_every}");
            let dir = scratch(&tag);
            if spawn_child(&dir, case, snapshot_every, Some(("wal-byte", kill_byte))) {
                crashes += 1;
                recover_and_verify(&dir, case, snapshot_every, &tag);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert!(crashes >= 10, "only {crashes} mid-frame kills fired");
}

#[test]
fn kills_after_frame_fsync_replay_the_logged_batch() {
    // Post-fsync kills: the frame is durable, the apply never ran.
    // Recovery must replay it — redo-log semantics — and the recovered
    // seq must therefore be at least the kill frame number.
    let mut crashes = 0;
    for case in 0..5u64 {
        for frames in [1u64, 2, 3] {
            let tag = format!("frames-{case}-{frames}");
            let dir = scratch(&tag);
            if spawn_child(&dir, case, 0, Some(("frames", frames))) {
                crashes += 1;
                let trace = Trace::for_case(SEED, case);
                if trace.to_batches().len() as u64 >= frames {
                    let (recovered, _) = FdEngine::recover_with_config(&dir, config(0))
                        .unwrap_or_else(|e| panic!("{tag}: {e}"));
                    assert_eq!(
                        recovered.seq(),
                        frames,
                        "{tag}: every fsynced frame must be replayed"
                    );
                    drop(recovered);
                }
                recover_and_verify(&dir, case, 0, &tag);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert!(crashes >= 10, "only {crashes} post-fsync kills fired");
}

#[test]
fn kills_mid_snapshot_leave_recoverable_state() {
    // Mid-snapshot kills: snapshot.tmp is left half-written, the rename
    // never happened. Recovery must ignore/remove the temp file and
    // come back from the previous snapshot + WAL.
    let mut crashes = 0;
    for case in 0..5u64 {
        for kill_byte in [5u64, 60, 350] {
            let tag = format!("snap-{case}-{kill_byte}");
            let dir = scratch(&tag);
            if spawn_child(&dir, case, 2, Some(("snapshot-byte", kill_byte))) {
                crashes += 1;
                recover_and_verify(&dir, case, 2, &tag);
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert!(crashes >= 10, "only {crashes} mid-snapshot kills fired");
}

#[test]
fn clean_child_run_recovers_completely() {
    let dir = scratch("clean");
    assert!(
        !spawn_child(&dir, 1, 3, None),
        "unplanned run must exit cleanly"
    );
    let trace = Trace::for_case(SEED, 1);
    let replayed = recover_and_verify(&dir, 1, 3, "clean");
    assert!(replayed <= trace.to_batches().len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_drain_kill_leaves_every_tenant_recoverable() {
    // The queue-drain kill point: the child queues three tenants'
    // interleaved backlogs with delivery paused, then shuts down with a
    // drain-kill budget armed — the abort lands after `kill_after` jobs
    // of the drain window completed, with the rest still queued (and a
    // job possibly mid-WAL-write on the other worker). Every tenant
    // directory must recover to a bit-identical replay of its durable
    // prefix, resume cleanly, and at least `kill_after` jobs in total
    // must have made it to disk (a completed job is durable *before*
    // its completion is counted).
    let mut crashes = 0;
    for kill_after in [1u64, 2, 4, 7] {
        for snapshot_every in [0usize, 2] {
            let tag = format!("serve-drain-{kill_after}-{snapshot_every}");
            let dir = scratch(&tag);
            if spawn_child(&dir, 0, snapshot_every, Some(("serve-drain", kill_after))) {
                crashes += 1;
                let config = config(snapshot_every);
                let mut durable_jobs = 0u64;
                for (name, trace) in &tenant_traces(SEED, 3) {
                    let tdir = dir.join(name);
                    let (mut recovered, _) = FdEngine::recover_with_config(&tdir, config)
                        .unwrap_or_else(|e| panic!("{tag}: recover {name}: {e}"));
                    let batches = trace.to_batches();
                    let prefix = recovered.seq() as usize;
                    assert!(
                        prefix <= batches.len(),
                        "{tag}: {name} recovered past its trace"
                    );
                    durable_jobs += prefix as u64;
                    let oracle = fresh_prefix(trace, prefix, config);
                    assert_eq!(
                        oracle.logical_divergence(recovered.dynfd()),
                        None,
                        "{tag}: {name} must equal a fresh replay of its durable prefix"
                    );
                    recovered
                        .dynfd()
                        .verify_annotations()
                        .unwrap_or_else(|e| panic!("{tag}: {name} annotations invalid: {e}"));
                    // Resume the rest of the tenant's stream: the same
                    // final state as an uninterrupted run.
                    for batch in &batches[prefix..] {
                        recovered
                            .apply_batch(batch)
                            .unwrap_or_else(|e| panic!("{tag}: {name} resume rejected: {e}"));
                    }
                    let full = fresh_prefix(trace, batches.len(), config);
                    assert_eq!(
                        full.logical_divergence(recovered.dynfd()),
                        None,
                        "{tag}: {name} resumed state must equal an uninterrupted run"
                    );
                }
                assert!(
                    durable_jobs >= kill_after,
                    "{tag}: only {durable_jobs} durable jobs for a budget of {kill_after}"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert!(crashes >= 4, "only {crashes} serve-drain kills fired");
}

#[test]
fn evict_kills_preserve_victim_prefix_and_bystanders() {
    // The eviction kill points: the child applies the victim's first
    // `value` batches (bystanders run their full streams), quiesces,
    // then closes the victim with the kill armed — `evict-drain`
    // aborts after the victim's FIFO drained but before its release
    // snapshot, `evict-persist` after the snapshot synced but before
    // the registry removal, and `evict-snap` lands `value` bytes into
    // the release snapshot itself (torn `snapshot.tmp`). Whatever the
    // kill, re-opening the victim must recover *exactly* its applied
    // prefix (bit-identical to a fresh replay, resumable to the
    // uninterrupted final state), and every bystander's durable state
    // must be complete and untouched.
    let mut crashes = 0;
    for (mode, value) in [
        ("evict-drain", 0u64),
        ("evict-drain", 2),
        ("evict-drain", 5),
        ("evict-persist", 0),
        ("evict-persist", 3),
        ("evict-persist", 7),
        ("evict-snap", 5),
        ("evict-snap", 60),
        ("evict-snap", 350),
    ] {
        for snapshot_every in [0usize, 2] {
            let tag = format!("{mode}-{value}-{snapshot_every}");
            let dir = scratch(&tag);
            if spawn_child(&dir, 0, snapshot_every, Some((mode, value))) {
                crashes += 1;
                let config = config(snapshot_every);
                for (i, (name, trace)) in tenant_traces(SEED, 3).iter().enumerate() {
                    let batches = trace.to_batches();
                    let expected_prefix = if i == 0 {
                        if mode == "evict-snap" {
                            batches.len() / 2
                        } else {
                            (value as usize).min(batches.len())
                        }
                    } else {
                        batches.len()
                    };
                    let tdir = dir.join(name);
                    let (mut recovered, _) = FdEngine::recover_with_config(&tdir, config)
                        .unwrap_or_else(|e| panic!("{tag}: recover {name}: {e}"));
                    // The child quiesced before the close: every
                    // applied batch was durable when the kill fired, so
                    // the recovered prefix is exact, not a bound.
                    assert_eq!(
                        recovered.seq() as usize,
                        expected_prefix,
                        "{tag}: {name} must recover exactly its applied prefix"
                    );
                    let oracle = fresh_prefix(trace, expected_prefix, config);
                    assert_eq!(
                        oracle.logical_divergence(recovered.dynfd()),
                        None,
                        "{tag}: {name} must equal a fresh replay of {expected_prefix} batches"
                    );
                    recovered
                        .dynfd()
                        .verify_annotations()
                        .unwrap_or_else(|e| panic!("{tag}: {name} annotations invalid: {e}"));
                    for batch in &batches[expected_prefix..] {
                        recovered
                            .apply_batch(batch)
                            .unwrap_or_else(|e| panic!("{tag}: {name} resume rejected: {e}"));
                    }
                    let full = fresh_prefix(trace, batches.len(), config);
                    assert_eq!(
                        full.logical_divergence(recovered.dynfd()),
                        None,
                        "{tag}: {name} resumed state must equal an uninterrupted run"
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    // The lifecycle kill points fire unconditionally: 6 modes x 2
    // snapshot cadences. evict-snap may be vacuous at large kill bytes.
    assert!(crashes >= 12, "only {crashes} eviction kills fired");
}

#[test]
fn corrupting_recovered_wal_still_recovers() {
    // Belt and braces: kill mid-frame, then flip one more byte in what
    // survived — recovery must still come back to a valid prefix.
    let dir = scratch("double-damage");
    if spawn_child(&dir, 2, 0, Some(("wal-byte", 120))) {
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).expect("read WAL");
        if bytes.len() > 20 {
            let target = bytes.len() / 2;
            bytes[target] ^= 0x08;
            std::fs::write(&path, &bytes).expect("rewrite WAL");
        }
        let trace = Trace::for_case(SEED, 2);
        let config = config(0);
        let (recovered, _) =
            FdEngine::recover_with_config(&dir, config).expect("recovery after double damage");
        let prefix = recovered.seq() as usize;
        let oracle = fresh_prefix(&trace, prefix, config);
        assert_eq!(oracle.logical_divergence(recovered.dynfd()), None);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
