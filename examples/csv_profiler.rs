//! Profile a CSV file and keep its FDs fresh under appended rows.
//!
//! Usage:
//!
//! ```text
//! cargo run --example csv_profiler -- path/to/data.csv
//! cargo run --example csv_profiler            # uses a built-in sample
//! ```
//!
//! The example reads the CSV, discovers its minimal FDs with all three
//! static algorithms (cross-checking them against each other), then
//! switches to DynFD maintenance and appends the last 10 % of the rows
//! as insert batches, printing each batch's FD delta.

use dynfd::common::Schema;
use dynfd::core::{DynFd, DynFdConfig};
use dynfd::relation::{parse_csv, read_csv_file, Batch, CsvTable, DynamicRelation};

const SAMPLE: &str = "\
employee,department,building,city,floor
alice,engineering,hq,berlin,3
bob,engineering,hq,berlin,3
carol,sales,east,potsdam,1
dave,sales,east,potsdam,1
erin,research,hq,berlin,2
frank,research,hq,berlin,2
grace,engineering,hq,berlin,3
heidi,support,east,potsdam,1
ivan,support,east,potsdam,2
judy,sales,west,berlin,1
";

fn main() {
    let table: CsvTable = match std::env::args().nth(1) {
        Some(path) => read_csv_file(&path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        }),
        None => {
            println!("(no CSV given — profiling the built-in sample)\n");
            parse_csv(SAMPLE).expect("sample parses")
        }
    };

    let schema: Schema = table.schema("csv");
    let split = table.rows.len() - table.rows.len() / 10;
    let (head, tail) = table.rows.split_at(split.max(1).min(table.rows.len()));

    let rel = DynamicRelation::from_rows(schema.clone(), head).unwrap_or_else(|e| {
        eprintln!("bad CSV contents: {e}");
        std::process::exit(1);
    });

    // Static profiling, cross-checked across all three algorithms when
    // the table is small enough for the quadratic/exponential oracles.
    let hyfd = dynfd::staticfd::hyfd::discover(&rel);
    if rel.len() <= 500 && rel.arity() <= 12 {
        assert_eq!(hyfd, dynfd::staticfd::tane::discover(&rel), "HyFD vs TANE");
        assert_eq!(hyfd, dynfd::staticfd::fdep::discover(&rel), "HyFD vs FDEP");
        println!("(static result cross-checked: HyFD = TANE = FDEP)");
    }
    println!(
        "minimal FDs of the first {} rows ({}):",
        head.len(),
        hyfd.len()
    );
    for fd in hyfd.all_fds() {
        println!("  {}", fd.display(&schema));
    }

    // Dynamic phase: append the held-out rows in small batches.
    let mut dynfd = DynFd::with_cover(rel, hyfd, DynFdConfig::default());
    for (i, chunk) in tail.chunks(2).enumerate() {
        let mut batch = Batch::new();
        for row in chunk {
            batch.insert(row.clone());
        }
        let result = dynfd.apply_batch(&batch).expect("csv rows are well-formed");
        if result.is_unchanged() {
            println!("batch {i}: no FD changes");
        } else {
            println!("batch {i}:");
            for fd in &result.removed {
                println!("  - {}", fd.display(&schema));
            }
            for fd in &result.added {
                println!("  + {}", fd.display(&schema));
            }
        }
    }
    println!("\nfinal minimal FD count: {}", dynfd.minimal_fds().len());
}
