//! The progressive violation search (§4.3).
//!
//! When the insert-phase lattice traversal invalidates more than the
//! threshold share of a level, most of the remaining candidates are
//! probably invalid too — and record-pair comparisons expose violations
//! far cheaper than per-candidate validations. A newly inserted record
//! can only violate FDs together with *partner* records sharing at least
//! one value, i.e. records in one of its PLI clusters. Comparing against
//! all of them is quadratic, so the search compares only near neighbors
//! under a similarity sort, widening the window while the yield (new
//! non-FDs per comparison) stays above the efficiency threshold.
//!
//! The §6.5 baseline keeps a *naive* variant — window 1 only — because
//! dropping the violation search entirely cripples the algorithm.

use crate::config::SearchMode;
use crate::errors::{DynFdError, DynFdResult};
use crate::{BatchMetrics, DynFd};
use dynfd_common::{AttrSet, RecordId};
use dynfd_relation::{agree_set, par_map};
use std::collections::BTreeSet;

/// One cluster's window-scan output: pair comparisons performed and the
/// non-trivial agree-set witnesses found, in window-position order.
type ClusterScan = (usize, Vec<(AttrSet, RecordId, RecordId)>);

/// A PLI cluster prepared for windowed comparisons.
struct SortedCluster {
    /// Cluster members, similarity-sorted (lexicographically by
    /// compressed signature).
    members: Vec<RecordId>,
    /// `is_new[i]` marks members inserted by the current batch.
    is_new: Vec<bool>,
}

impl DynFd {
    /// Runs the violation search for the given batch of inserted records
    /// (Algorithm 2 line 17), addressed by record id *and* arena slot —
    /// the slot-based delta of [`AppliedBatch`](dynfd_relation::AppliedBatch)
    /// lets the value collection below read each new row straight out of
    /// the columnar arena instead of resolving rid → slot per attribute.
    /// Discovered agree sets update both covers via Algorithm 3.
    pub(crate) fn violation_search(
        &mut self,
        inserted: &[RecordId],
        inserted_slots: &[u32],
        metrics: &mut BatchMetrics,
    ) -> DynFdResult<()> {
        let arity = self.rel.arity();
        // A slot is taken only while its rid still maps to it — same
        // tolerance the rid-based filter had for records that vanished
        // between batch application and the search.
        let new_slots: Vec<u32> = inserted
            .iter()
            .zip(inserted_slots)
            .filter(|&(&rid, &slot)| self.rel.slot_of(rid) == Some(slot))
            .map(|(_, &slot)| slot)
            .collect();
        let new_ids: BTreeSet<RecordId> = inserted
            .iter()
            .copied()
            .filter(|&r| self.rel.contains(r))
            .collect();
        if new_ids.is_empty() {
            return Ok(());
        }

        // Collect each inserted record's partner clusters: for every
        // attribute, the cluster holding the record's value. The same
        // (attr, value) cluster is collected once even if several new
        // records share it. The (attr, value) job list is assembled in
        // deterministic order on the coordinating thread; the expensive
        // part — the per-cluster similarity sort — fans out.
        let threads = self.config.effective_parallelism();
        let mut cluster_jobs: Vec<(usize, u32)> = Vec::new();
        for attr in 0..arity {
            let mut values: BTreeSet<u32> = BTreeSet::new();
            for &slot in &new_slots {
                values.insert(self.rel.row_at_slot(slot).get(attr));
            }
            for value in values {
                let cluster = self.rel.pli(attr).cluster(value).ok_or_else(|| {
                    DynFdError::invariant(
                        "violation-search",
                        format!("inverted index misses cluster ({attr}, {value}) of a live record"),
                    )
                })?;
                if cluster.len() >= 2 {
                    cluster_jobs.push((attr, value));
                }
            }
        }
        let rel = &self.rel;
        let clusters: Vec<SortedCluster> = par_map(&cluster_jobs, threads, |&(attr, value)| {
            // Invariant expects inside the worker closure: the job list
            // above proved each (attr, value) cluster exists and every
            // member id is live, and the relation is frozen while the
            // workers run. A panic here crosses the par_map join and is
            // converted to `PhasePanicked` at the transactional boundary.
            let cluster = rel.pli(attr).cluster(value).expect("cluster vetted above");
            // Clusters hold arena slots; the windowed scan wants record
            // ids (agree sets and witnesses are rid-level artifacts).
            let mut members: Vec<RecordId> = cluster.iter().map(|&s| rel.rid_at_slot(s)).collect();
            members.sort_by(|&x, &y| {
                rel.compressed(x)
                    .expect("cluster member is live")
                    .cmp(&rel.compressed(y).expect("cluster member is live"))
            });
            let is_new = members.iter().map(|m| new_ids.contains(m)).collect();
            SortedCluster { members, is_new }
        });
        if clusters.is_empty() {
            return Ok(());
        }

        let max_dist = match self.config.violation_search {
            SearchMode::Naive => 1,
            SearchMode::Progressive => usize::MAX,
        };

        let mut dist = 1usize;
        loop {
            // The window scan splits into a read-only half (pair
            // selection + agree-set computation against the frozen
            // relation) that fans out per cluster, and a mutating half
            // (witness application to the covers) that runs on the
            // coordinating thread in (cluster, window-position) order —
            // the exact order of the sequential scan, so the covers and
            // the `learned` yield driving the cut-off are bit-identical.
            let mut any_window_applied = false;
            let rel = &self.rel;
            let scans: Vec<ClusterScan> = par_map(&clusters, threads, |c| {
                let mut comparisons = 0usize;
                let mut witnesses: Vec<(AttrSet, RecordId, RecordId)> = Vec::new();
                if c.members.len() <= dist {
                    return (comparisons, witnesses);
                }
                for i in 0..c.members.len() - dist {
                    // Only pairs touching an inserted record can carry
                    // *new* violations.
                    if !c.is_new[i] && !c.is_new[i + dist] {
                        continue;
                    }
                    let (a, b) = (c.members[i], c.members[i + dist]);
                    comparisons += 1;
                    // Worker-closure invariant (see the sort above): both
                    // ids came from a live cluster of the frozen relation.
                    let agree = agree_set(rel, a, b).expect("cluster members are live");
                    if agree.len() == arity {
                        continue; // duplicates witness nothing
                    }
                    witnesses.push((agree, a, b));
                }
                (comparisons, witnesses)
            });

            let mut comparisons = 0usize;
            let mut learned = 0usize;
            for (c, (cluster_comparisons, witnesses)) in clusters.iter().zip(scans) {
                if c.members.len() > dist {
                    any_window_applied = true;
                }
                comparisons += cluster_comparisons;
                for (agree, a, b) in witnesses {
                    if self.apply_non_fd_witness(agree, (a, b)) {
                        learned += 1;
                    }
                }
            }
            metrics.comparisons += comparisons;
            metrics.search_rounds += 1;

            if !any_window_applied || dist >= max_dist {
                break;
            }
            // Progressive efficiency cut-off: stop once fewer than the
            // threshold share of comparisons reveal something new.
            if comparisons > 0
                && (learned as f64 / comparisons as f64) < self.config.inefficiency_threshold
            {
                break;
            }
            dist += 1;
        }
        Ok(())
    }
}
