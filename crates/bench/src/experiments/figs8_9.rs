//! Figures 8 and 9 — total runtime per pruning-strategy composition.
//!
//! Figure 8 uses a fixed batch size of 1,000; Figure 9 a relative batch
//! size of 10 % of the initial dataset. Rows are the eight strategy
//! sets ("-" = the naive-sampling baseline, "4.3+5.3+4.2+5.2" = all
//! strategies), columns the six datasets, cells the total maintenance
//! runtime in milliseconds over the first 10,000 changes.
//!
//! Expected shape vs. the paper: the all-strategies composition is best
//! or near-best on every dataset (reliably good rather than universally
//! optimal); validation pruning (5.2) can hurt on the insert-only
//! `claims` where annotations are maintained but never consulted.

use crate::experiments::{Ctx, CHANGE_CAP};
use crate::report::{ms, Table};
use crate::runner::run_dynfd;
use crate::strategies::strategy_sets;

/// Runs the fixed-batch-size variant (Figure 8, batch = 1,000).
pub fn run_fig8(ctx: &Ctx) -> Table {
    run_with(ctx, |_| 1_000)
}

/// Runs the relative variant (Figure 9, batch = 10 % of #Rows).
pub fn run_fig9(ctx: &Ctx) -> Table {
    run_with(ctx, |rows| ((rows as f64) * 0.10) as usize)
}

fn run_with(ctx: &Ctx, batch_for: impl Fn(usize) -> usize) -> Table {
    let names = ctx.names();
    let mut header: Vec<String> = vec!["Strategies".into()];
    header.extend(names.iter().map(|n| format!("{n}[ms]")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for (label, config) in strategy_sets() {
        let mut cells = vec![label.to_string()];
        for name in &names {
            let data = ctx.dataset(name);
            let batch_size = batch_for(data.initial_rows.len()).max(1);
            let outcome = run_dynfd(&data, batch_size, Some(CHANGE_CAP), config);
            cells.push(ms(outcome.total.as_secs_f64() * 1_000.0));
        }
        table.row(cells);
    }
    table
}
