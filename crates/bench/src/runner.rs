//! Shared measurement drivers: DynFD maintenance runs and the
//! repeated-HyFD baseline.

use dynfd_core::{BatchMetrics, DynFd, DynFdConfig};
use dynfd_datagen::GeneratedDataset;
use std::time::{Duration, Instant};

/// Timing record of one maintenance (or repeated-profiling) run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Wall-clock time per batch, in batch order.
    pub batch_times: Vec<Duration>,
    /// Sum of all batch times.
    pub total: Duration,
    /// Number of change operations processed.
    pub changes: usize,
    /// Minimal FD count after the last batch.
    pub final_fd_count: usize,
    /// Accumulated DynFD work counters (zeroed for the HyFD baseline).
    pub metrics: BatchMetrics,
}

impl RunOutcome {
    /// Average batch time in milliseconds.
    pub fn avg_batch_ms(&self) -> f64 {
        if self.batch_times.is_empty() {
            return 0.0;
        }
        self.total.as_secs_f64() * 1_000.0 / self.batch_times.len() as f64
    }

    /// Throughput in changes per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.changes as f64 / secs
        }
    }

    /// The `q`-th percentile batch time in milliseconds (e.g. `0.99`).
    pub fn percentile_ms(&self, q: f64) -> f64 {
        if self.batch_times.is_empty() {
            return 0.0;
        }
        let mut sorted = self.batch_times.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1].as_secs_f64() * 1_000.0
    }
}

/// Replays `data`'s change history through DynFD in batches of
/// `batch_size` (up to `limit` changes) and times each batch.
///
/// The static bootstrap (HyFD + cover inversion over the initial tuples)
/// is *excluded* from the timings, matching the paper's setup where the
/// initial covers are given to DynFD as input.
pub fn run_dynfd(
    data: &GeneratedDataset,
    batch_size: usize,
    limit: Option<usize>,
    config: DynFdConfig,
) -> RunOutcome {
    let mut dynfd = DynFd::new(data.to_relation(), config);
    let batches = data.batches(batch_size, limit);
    let mut batch_times = Vec::with_capacity(batches.len());
    let mut total = Duration::ZERO;
    let mut changes = 0usize;
    let mut metrics = BatchMetrics::default();
    for batch in &batches {
        changes += batch.len();
        let result = dynfd
            .apply_batch(batch)
            .expect("generated stream replays cleanly");
        batch_times.push(result.metrics.wall_time);
        total += result.metrics.wall_time;
        metrics.absorb(&result.metrics);
    }
    RunOutcome {
        batch_times,
        total,
        changes,
        final_fd_count: dynfd.minimal_fds().len(),
        metrics,
    }
}

/// The paper's baseline: after each batch is applied to the relation,
/// re-run the static HyFD from scratch. Only the profiling time (not
/// the structure update) is charged, which is generous to the baseline.
pub fn run_hyfd_repeated(
    data: &GeneratedDataset,
    batch_size: usize,
    limit: Option<usize>,
) -> RunOutcome {
    let mut rel = data.to_relation();
    let batches = data.batches(batch_size, limit);
    let mut batch_times = Vec::with_capacity(batches.len());
    let mut total = Duration::ZERO;
    let mut changes = 0usize;
    let mut final_fd_count = 0usize;
    for batch in &batches {
        changes += batch.len();
        rel.apply_batch(batch)
            .expect("generated stream replays cleanly");
        let start = Instant::now();
        let fds = dynfd_static::hyfd::discover(&rel);
        let elapsed = start.elapsed();
        batch_times.push(elapsed);
        total += elapsed;
        final_fd_count = fds.len();
    }
    RunOutcome {
        batch_times,
        total,
        changes,
        final_fd_count,
        metrics: BatchMetrics::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_datagen::DatasetProfile;

    fn tiny() -> GeneratedDataset {
        GeneratedDataset::generate(&DatasetProfile {
            name: "tiny",
            columns: 5,
            initial_rows: 40,
            changes: 120,
            insert_pct: 50.0,
            delete_pct: 10.0,
            update_pct: 40.0,
            update_columns: 2,
            seed: 3,
            bursts: 0,
            burst_len: 0,
        })
    }

    #[test]
    fn dynfd_and_hyfd_agree_on_final_fd_count() {
        let data = tiny();
        let a = run_dynfd(&data, 30, None, DynFdConfig::default());
        let b = run_hyfd_repeated(&data, 30, None);
        assert_eq!(a.final_fd_count, b.final_fd_count);
        assert_eq!(a.changes, b.changes);
        assert_eq!(a.batch_times.len(), 4);
    }

    #[test]
    fn limit_truncates() {
        let data = tiny();
        let out = run_dynfd(&data, 25, Some(50), DynFdConfig::default());
        assert_eq!(out.changes, 50);
        assert_eq!(out.batch_times.len(), 2);
    }

    #[test]
    fn percentiles_are_ordered() {
        let data = tiny();
        let out = run_dynfd(&data, 10, None, DynFdConfig::default());
        let p99 = out.percentile_ms(0.99);
        let p90 = out.percentile_ms(0.90);
        let p50 = out.percentile_ms(0.50);
        assert!(p99 >= p90 && p90 >= p50);
        assert!(out.avg_batch_ms() > 0.0);
        assert!(out.throughput() > 0.0);
    }
}
