//! Durable-engine crash fuzzing.
//!
//! The persistence layer (`dynfd-persist`) claims that after *any*
//! crash — a torn WAL append, a bit-flipped log, a partially written
//! snapshot — recovery reconstructs a state bit-identical to replaying
//! the surviving batch prefix on a fresh engine, and never panics. This
//! module turns that claim into fuzzable checks that plug into the
//! existing trace/shrink/repro machinery:
//!
//! * [`WalFault`] — the injectable damage modes (`crash-at-frame`,
//!   `torn-tail`, `bit-flip-wal`);
//! * [`check_trace_durable`] — replays a [`Trace`] through a durable
//!   [`FdEngine`], damages its files at a seeded point exactly as the
//!   chosen fault dictates, recovers, and verifies the three recovery
//!   invariants: recovery returns (no panic, typed errors only), the
//!   recovered relation and covers equal a fresh in-memory replay of
//!   the surviving batch prefix (violation annotations are checked for
//!   *validity* — witness pairs are cache-path-dependent, see
//!   `DynFd::logical_divergence`), and resuming the remaining batches
//!   lands on the same final covers as an uninterrupted run.
//!
//! The damage here is *file-level* (performed on a dropped engine's
//! directory), which keeps everything in-process and deterministic.
//! Real process kills — `abort()` mid-`write` via
//! [`CrashPlan`](dynfd_persist::CrashPlan) — are exercised by the
//! child-process harness in `tests/crash_harness.rs`, which reuses the
//! same invariant checks.

use crate::{Trace, TraceFailure};
use dynfd_core::{DynFd, DynFdConfig};
use dynfd_persist::{wal_path, FdEngine, RecoveryReport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fs;
use std::path::{Path, PathBuf};

/// An injectable WAL/snapshot damage mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalFault {
    /// Stop applying at a seeded batch, log one more frame *without*
    /// applying it (the crash-between-log-and-apply window), and leave
    /// the files as the crash would. Recovery must either replay the
    /// logged frame (it is valid redo work) or re-reject and truncate
    /// it — both end bit-identical to some fresh batch prefix.
    CrashAtFrame,
    /// Truncate the WAL at a seeded byte offset after the run — a torn
    /// tail from a power cut mid-append. Recovery must keep exactly the
    /// frames that fit before the cut and truncate the rest.
    TornTail,
    /// Flip one seeded bit anywhere in the WAL file (magic included).
    /// Recovery must detect the damage via CRC/structure checks, keep
    /// the longest valid prefix, and never panic.
    BitFlipWal,
}

impl WalFault {
    /// All modes, in the order the fuzz binary cycles through them.
    pub const ALL: [WalFault; 3] = [
        WalFault::CrashAtFrame,
        WalFault::TornTail,
        WalFault::BitFlipWal,
    ];

    /// The mode's name as used on the fuzz CLI and in reports.
    pub fn name(self) -> &'static str {
        match self {
            WalFault::CrashAtFrame => "crash-at-frame",
            WalFault::TornTail => "torn-tail",
            WalFault::BitFlipWal => "bit-flip-wal",
        }
    }

    /// Looks a mode up by its [`WalFault::name`].
    pub fn by_name(name: &str) -> Option<WalFault> {
        WalFault::ALL.iter().copied().find(|m| m.name() == name)
    }
}

/// Work counters for one durable-crash-checked trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashStats {
    /// Simulated crashes (one per checked trace).
    pub crashes: usize,
    /// Batches durably applied before the crash point.
    pub batches_before_crash: usize,
    /// WAL frames recovery replayed on top of the snapshot.
    pub frames_replayed: usize,
    /// Recoveries that had to truncate a torn/corrupt/rejected tail.
    pub truncations: usize,
    /// Batches applied after recovery to finish the trace.
    pub batches_resumed: usize,
}

impl CrashStats {
    /// Accumulates another trace's counters.
    pub fn absorb(&mut self, other: &CrashStats) {
        self.crashes += other.crashes;
        self.batches_before_crash += other.batches_before_crash;
        self.frames_replayed += other.frames_replayed;
        self.truncations += other.truncations;
        self.batches_resumed += other.batches_resumed;
    }
}

/// A scratch directory that cleans up after itself.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str, seed: u64) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "dynfd-crash-{}-{tag}-{seed:016x}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn durable_failure(
    check: &str,
    config: &DynFdConfig,
    batch: Option<usize>,
    expected: impl Into<Vec<String>>,
    actual: impl Into<Vec<String>>,
) -> Box<TraceFailure> {
    Box::new(TraceFailure {
        check: format!("durable:{check}"),
        config: config.strategy_label(),
        batch,
        expected: expected.into(),
        actual: actual.into(),
    })
}

fn rendered_fds(engine: &DynFd) -> Vec<String> {
    engine
        .minimal_fds()
        .iter()
        .map(|fd| fd.to_string())
        .collect()
}

/// Builds the fresh in-memory oracle: `trace`'s initial relation with
/// the first `prefix` batches applied.
fn fresh_prefix(
    trace: &Trace,
    batches: &[dynfd_relation::Batch],
    prefix: usize,
    config: DynFdConfig,
) -> DynFd {
    let mut oracle = DynFd::new(trace.to_relation(), config);
    for batch in &batches[..prefix] {
        oracle
            .apply_batch(batch)
            .expect("trace batches are valid by construction");
    }
    oracle
}

/// Damages the engine directory according to `fault`. Returns `true`
/// when file content was actually altered (an empty WAL leaves nothing
/// for `TornTail`/`BitFlipWal` to damage).
fn inject_damage(fault: WalFault, dir: &Path, rng: &mut ChaCha8Rng) -> bool {
    let path = wal_path(dir);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(_) => return false,
    };
    match fault {
        // CrashAtFrame damages nothing at the file level: the "damage"
        // is the un-applied logged frame, produced before drop.
        WalFault::CrashAtFrame => false,
        WalFault::TornTail => {
            if bytes.len() <= 8 {
                return false;
            }
            let cut = rng.gen_range(8..bytes.len());
            fs::write(&path, &bytes[..cut]).expect("rewrite WAL");
            true
        }
        WalFault::BitFlipWal => {
            if bytes.is_empty() {
                return false;
            }
            let mut flipped = bytes;
            let byte = rng.gen_range(0..flipped.len());
            let bit = rng.gen_range(0..8u8);
            flipped[byte] ^= 1 << bit;
            fs::write(&path, &flipped).expect("rewrite WAL");
            true
        }
    }
}

/// Replays `trace` through a durable engine, crashes it with `fault` at
/// a seeded point, recovers, and checks the recovery invariants (see
/// the module docs). Uses the default configuration with a seeded
/// snapshot cadence so snapshot boundaries, stale frames, and pure-WAL
/// recoveries are all exercised.
pub fn check_trace_durable(
    trace: &Trace,
    fault: WalFault,
) -> Result<CrashStats, Box<TraceFailure>> {
    let mut rng = ChaCha8Rng::seed_from_u64(trace.seed ^ 0xD0_5EED ^ fault as u64);
    let config = DynFdConfig {
        // 0 disables periodic snapshots (pure WAL replay); small values
        // exercise snapshot boundaries and stale-frame skipping.
        snapshot_every: *[0usize, 1, 2, 5]
            .get(rng.gen_range(0..4usize))
            .expect("cadence index in range"),
        ..DynFdConfig::default()
    };
    let scratch = ScratchDir::new(fault.name(), trace.seed);
    let dir = scratch.0.clone();
    let batches = trace.to_batches();
    let crash_at = if batches.is_empty() {
        0
    } else {
        rng.gen_range(0..=batches.len())
    };

    let mut stats = CrashStats {
        crashes: 1,
        batches_before_crash: crash_at,
        ..CrashStats::default()
    };

    // Phase 1: run up to the crash point, then damage the files the way
    // the fault dictates and "crash" (drop the engine).
    {
        let mut engine =
            FdEngine::create(&dir, trace.to_relation(), config).expect("durable engine creation");
        for batch in &batches[..crash_at] {
            engine
                .apply_batch(batch)
                .expect("trace batches are valid by construction");
        }
        if fault == WalFault::CrashAtFrame && crash_at < batches.len() {
            // The crash window between the durable append and the
            // in-memory apply: the frame is on disk, the state is not.
            engine
                .log_without_apply(&batches[crash_at])
                .expect("log-only append");
        }
        drop(engine);
    }
    inject_damage(fault, &dir, &mut rng);

    // Phase 2: recover. Must return, not panic; damage surfaces as the
    // typed corruption/rejection fields of the report.
    let (mut recovered, report): (FdEngine, RecoveryReport) =
        match FdEngine::recover_with_config(&dir, config) {
            Ok(pair) => pair,
            Err(e) => {
                return Err(durable_failure(
                    "recovery-error",
                    &config,
                    Some(crash_at),
                    vec!["recovery succeeds (typed report, no panic)".into()],
                    vec![e.to_string()],
                ));
            }
        };
    stats.frames_replayed += report.replayed_batches;
    if report.corruption.is_some() || report.rejected.is_some() {
        stats.truncations += 1;
    }

    // Invariant: the recovered sequence number never exceeds what was
    // durably logged, and with an undamaged log it is exact.
    let durable_prefix = recovered.seq() as usize;
    let logged =
        crash_at + usize::from(fault == WalFault::CrashAtFrame && crash_at < batches.len());
    if durable_prefix > logged {
        return Err(durable_failure(
            "phantom-batches",
            &config,
            Some(crash_at),
            vec![format!("recovered seq <= {logged}")],
            vec![format!("recovered seq {durable_prefix}")],
        ));
    }

    // Invariant: recovered relation and covers are bit-identical to a
    // fresh in-memory replay of the surviving prefix under the same
    // configuration, and the recovered violation annotations are valid
    // witnessing pairs. (The exact pairs may differ from the oracle's:
    // witness selection depends on the PLI-intersection cache, which is
    // cold after recovery — see `DynFd::logical_divergence`.)
    let oracle = fresh_prefix(trace, &batches, durable_prefix, config);
    if let Some(divergence) = oracle.logical_divergence(recovered.dynfd()) {
        return Err(durable_failure(
            "prefix-state",
            &config,
            Some(durable_prefix),
            rendered_fds(&oracle),
            vec![
                divergence,
                format!("covers: {:?}", rendered_fds(recovered.dynfd())),
            ],
        ));
    }
    if let Err(detail) = recovered.dynfd().verify_annotations() {
        return Err(durable_failure(
            "prefix-annotations",
            &config,
            Some(durable_prefix),
            vec!["recovered annotations are valid violating pairs".into()],
            vec![detail],
        ));
    }

    // Phase 3: resume. Applying the not-yet-durable suffix must land on
    // the same final state as an uninterrupted fresh run — and survive
    // a second recovery round-trip.
    for batch in &batches[durable_prefix..] {
        recovered
            .apply_batch(batch)
            .expect("resumed trace batches are valid by construction");
        stats.batches_resumed += 1;
    }
    let full = fresh_prefix(trace, &batches, batches.len(), config);
    if let Some(divergence) = full.logical_divergence(recovered.dynfd()) {
        return Err(durable_failure(
            "final-state",
            &config,
            Some(batches.len()),
            rendered_fds(&full),
            vec![
                divergence,
                format!("covers: {:?}", rendered_fds(recovered.dynfd())),
            ],
        ));
    }
    if let Err(detail) = recovered.dynfd().verify_annotations() {
        return Err(durable_failure(
            "final-annotations",
            &config,
            Some(batches.len()),
            vec!["resumed annotations are valid violating pairs".into()],
            vec![detail],
        ));
    }
    drop(recovered);
    let (reloaded, _) = match FdEngine::recover_with_config(&dir, config) {
        Ok(pair) => pair,
        Err(e) => {
            return Err(durable_failure(
                "re-recovery-error",
                &config,
                Some(batches.len()),
                vec!["clean shutdown recovers".into()],
                vec![e.to_string()],
            ));
        }
    };
    if let Some(divergence) = full.logical_divergence(reloaded.dynfd()) {
        return Err(durable_failure(
            "re-recovery-state",
            &config,
            Some(batches.len()),
            rendered_fds(&full),
            vec![divergence],
        ));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_faults_have_distinct_names() {
        let names: std::collections::BTreeSet<&str> =
            WalFault::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), WalFault::ALL.len());
        for mode in WalFault::ALL {
            assert_eq!(WalFault::by_name(mode.name()), Some(mode));
        }
        assert_eq!(WalFault::by_name("nonsense"), None);
    }

    #[test]
    fn durable_checks_pass_on_healthy_traces() {
        for case in 0..3 {
            let trace = Trace::for_case(11, case);
            for fault in WalFault::ALL {
                let stats = check_trace_durable(&trace, fault)
                    .unwrap_or_else(|f| panic!("case {case} fault {} failed: {f}", fault.name()));
                assert_eq!(stats.crashes, 1);
            }
        }
    }

    #[test]
    fn stats_absorb() {
        let mut a = CrashStats {
            crashes: 1,
            frames_replayed: 3,
            ..CrashStats::default()
        };
        a.absorb(&CrashStats {
            crashes: 1,
            truncations: 1,
            batches_resumed: 4,
            ..CrashStats::default()
        });
        assert_eq!(a.crashes, 2);
        assert_eq!(a.frames_replayed, 3);
        assert_eq!(a.truncations, 1);
        assert_eq!(a.batches_resumed, 4);
    }
}
