//! Per-tenant serve metrics.
//!
//! All counters are relaxed atomics: they are operator telemetry, not
//! synchronization. The one consistency property tests rely on — after
//! a quiesce, `submitted == applied + rejected + shed` — holds because
//! every submit path increments exactly one of the three outcome
//! counters before the batch's completion fires.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live counters for one tenant (see the module docs).
#[derive(Debug, Default)]
pub struct TenantMetrics {
    submitted: AtomicU64,
    applied: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    fds_added: AtomicU64,
    fds_removed: AtomicU64,
    max_depth: AtomicU64,
    latency_total_nanos: AtomicU64,
    latency_max_nanos: AtomicU64,
}

/// A point-in-time copy of a tenant's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Batches offered to this tenant (every outcome).
    pub submitted: u64,
    /// Batches durably applied.
    pub applied: u64,
    /// Batches the engine rejected (typed `DynFdError` rejections and
    /// rolled-back internal faults).
    pub rejected: u64,
    /// Batches shed at admission (queue full under the shed policy).
    pub shed: u64,
    /// Minimal FDs added across all applied batches.
    pub fds_added: u64,
    /// Minimal FDs removed across all applied batches.
    pub fds_removed: u64,
    /// High-water mark of the tenant's in-flight queue depth.
    pub max_depth: u64,
    /// Sum of submit→completion latency over applied + rejected batches.
    pub latency_total: Duration,
    /// Worst single submit→completion latency.
    pub latency_max: Duration,
}

impl TenantMetrics {
    /// Records an admission attempt reaching depth `depth`.
    pub fn note_submitted(&self, depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Records a load-shed (admission refused).
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed batch: applied or rejected, with its
    /// submit→completion latency and (when applied) the FD delta sizes.
    pub fn note_completed(&self, applied: bool, added: u64, removed: u64, latency: Duration) {
        if applied {
            self.applied.fetch_add(1, Ordering::Relaxed);
            self.fds_added.fetch_add(added, Ordering::Relaxed);
            self.fds_removed.fetch_add(removed, Ordering::Relaxed);
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.latency_total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.latency_max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Copies the counters out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            fds_added: self.fds_added.load(Ordering::Relaxed),
            fds_removed: self.fds_removed.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
            latency_total: Duration::from_nanos(self.latency_total_nanos.load(Ordering::Relaxed)),
            latency_max: Duration::from_nanos(self.latency_max_nanos.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_partition_submissions() {
        let m = TenantMetrics::default();
        m.note_submitted(1);
        m.note_completed(true, 2, 1, Duration::from_micros(5));
        m.note_submitted(2);
        m.note_completed(false, 0, 0, Duration::from_micros(9));
        m.note_submitted(3);
        m.note_shed();
        let s = m.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.applied + s.rejected + s.shed, 3);
        assert_eq!((s.fds_added, s.fds_removed), (2, 1));
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.latency_max, Duration::from_micros(9));
        assert_eq!(s.latency_total, Duration::from_micros(14));
    }
}
