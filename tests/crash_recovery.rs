//! Property tests for the durable engine's crash-recovery contract
//! (`dynfd::persist`), driven by testkit traces:
//!
//! * whatever point a crash interrupts a run at — mid-WAL-frame, between
//!   the durable append and the apply, mid-snapshot-write — recovery
//!   must come back without panicking, with a relation and covers
//!   bit-identical to a fresh in-memory replay of the surviving batch
//!   prefix, and resuming must land on the same final covers as an
//!   uninterrupted run (checked by `check_trace_durable`, the same
//!   oracle the fuzz binary uses);
//! * a *rejected* batch is durably rewound out of the WAL: recovery
//!   never replays it, even when the crash lands between the rejected
//!   frame's fsync and the rewind;
//! * corruption surfaces as typed errors with the documented CLI exit
//!   codes, never as a panic.
//!
//! The property bodies live in plain helper functions (they panic on
//! violation) so the `proptest!` block stays within the macro's
//! recursion budget.

#![recursion_limit = "256"]

use dynfd::common::RecordId;
use dynfd::core::{DynFd, DynFdConfig, DynFdError};
use dynfd::persist::{wal_path, FdEngine, SNAP_TMP};
use dynfd::relation::Batch;
use dynfd_testkit::{check_trace_durable, Trace, WalFault};
use proptest::prelude::*;
use std::path::PathBuf;

/// A scratch directory under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dynfd-crash-recovery-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Replays `trace`'s first `prefix` batches on a fresh in-memory engine.
fn fresh_prefix(trace: &Trace, prefix: usize, config: DynFdConfig) -> DynFd {
    let mut oracle = DynFd::new(trace.to_relation(), config);
    for batch in trace.to_batches().iter().take(prefix) {
        oracle.apply_batch(batch).expect("valid trace batch");
    }
    oracle
}

/// Rejected batches never reappear: log → reject → rewind, then crash
/// and recover. The recovered engine must equal a replay of only the
/// *accepted* batches, and the WAL rewind must be durable even when the
/// crash lands between the rejected frame's fsync and the rewind
/// (simulated via `log_without_apply`).
fn check_rejected_batch_rewind(seed: u64, case: u64, crash_before_rewind: bool) {
    let trace = Trace::for_case(seed, case);
    let batches = trace.to_batches();
    if batches.is_empty() {
        return;
    }
    let config = DynFdConfig::default();
    let scratch = Scratch::new(&format!("reject-{seed}-{case}-{crash_before_rewind}"));

    let mut engine =
        FdEngine::create(&scratch.0, trace.to_relation(), config).expect("engine creation");
    let applied = batches.len() / 2;
    for batch in &batches[..applied] {
        engine.apply_batch(batch).expect("valid trace batch");
    }
    // A delete of a record id beyond anything assignable is always
    // rejected as a whole-batch validation failure.
    let unknown = RecordId(engine.dynfd().relation().next_id().0 + 10_000);
    let mut poison = Batch::new();
    poison.delete(unknown);
    if crash_before_rewind {
        // Crash window: the poison frame is durable, the rejection (and
        // with it the rewind) never ran.
        engine.log_without_apply(&poison).expect("log-only append");
    } else {
        let err = engine
            .apply_batch(&poison)
            .expect_err("poison must be rejected");
        assert!(err.is_rejection(), "unexpected error class: {err}");
    }
    drop(engine);

    let (recovered, report) =
        FdEngine::recover_with_config(&scratch.0, config).expect("recovery after rejection");
    assert_eq!(recovered.seq() as usize, applied, "rejected batch replayed");
    if crash_before_rewind {
        let (seq, err) = report.rejected.expect("poison frame re-rejected on replay");
        assert_eq!(seq as usize, applied + 1);
        assert!(err.is_rejection());
    } else {
        assert!(report.rejected.is_none(), "rewound frame resurfaced");
    }

    let oracle = fresh_prefix(&trace, applied, config);
    assert_eq!(oracle.logical_divergence(recovered.dynfd()), None);

    // The rewind is durable: a second recovery finds a clean log.
    drop(recovered);
    let (recovered, report) =
        FdEngine::recover_with_config(&scratch.0, config).expect("second recovery");
    assert!(
        report.rejected.is_none(),
        "rejected frame survived the rewind"
    );
    assert_eq!(recovered.seq() as usize, applied);
}

/// A crash mid-snapshot leaves `snapshot.tmp` behind; recovery must
/// discard it and come back from the previous snapshot plus the WAL
/// tail, bit-identical on relation and covers.
fn check_snapshot_tmp_leftover(seed: u64, case: u64, garbage_len: usize) {
    let trace = Trace::for_case(seed, case);
    let batches = trace.to_batches();
    if batches.is_empty() {
        return;
    }
    let config = DynFdConfig {
        snapshot_every: 0,
        ..DynFdConfig::default()
    };
    let scratch = Scratch::new(&format!("snap-tmp-{seed}-{case}-{garbage_len}"));

    let mut engine =
        FdEngine::create(&scratch.0, trace.to_relation(), config).expect("engine creation");
    for batch in &batches {
        engine.apply_batch(batch).expect("valid trace batch");
    }
    drop(engine);
    // Simulate a kill partway through the temp-file write: a
    // half-written snapshot.tmp that never got renamed.
    std::fs::write(scratch.0.join(SNAP_TMP), vec![0xA5u8; garbage_len])
        .expect("plant snapshot.tmp");

    let (recovered, report) = FdEngine::recover_with_config(&scratch.0, config)
        .expect("recovery with leftover snapshot.tmp");
    assert!(report.corruption.is_none());
    assert_eq!(recovered.seq() as usize, batches.len());
    assert!(
        !scratch.0.join(SNAP_TMP).exists(),
        "leftover temp snapshot must be cleaned up"
    );

    let oracle = fresh_prefix(&trace, batches.len(), config);
    assert_eq!(oracle.logical_divergence(recovered.dynfd()), None);
    recovered
        .dynfd()
        .verify_annotations()
        .expect("valid annotations");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The full durable contract over random traces × damage modes ×
    // seeded crash offsets. check_trace_durable internally seeds the
    // crash point, the snapshot cadence, and the damage offset from
    // the trace seed, so varying (seed, case) sweeps all three.
    #[test]
    fn any_crash_recovers_to_a_replayable_prefix(
        seed in 0u64..500,
        case in 0u64..8,
        fault_idx in 0usize..3,
    ) {
        let trace = Trace::for_case(seed, case);
        if let Err(failure) = check_trace_durable(&trace, WalFault::ALL[fault_idx]) {
            prop_assert!(false, "durable check failed: {failure}");
        }
    }

    #[test]
    fn rejected_batches_never_reappear_after_recovery(
        seed in 0u64..300,
        case in 0u64..6,
        crash_before_rewind in any::<bool>(),
    ) {
        check_rejected_batch_rewind(seed, case, crash_before_rewind);
    }

    #[test]
    fn snapshot_mid_write_kill_recovers_from_previous_state(
        seed in 0u64..200,
        case in 0u64..6,
        garbage_len in 1usize..512,
    ) {
        check_snapshot_tmp_leftover(seed, case, garbage_len);
    }
}

/// Corruption surfaces as the documented typed errors with stable CLI
/// exit codes — the contract the `recover` subcommand relies on.
#[test]
fn corruption_errors_carry_the_documented_exit_codes() {
    assert_eq!(DynFdError::WalCorrupt { seq: 1, offset: 8 }.exit_code(), 11);
    assert_eq!(
        DynFdError::SnapshotCorrupt { detail: "x".into() }.exit_code(),
        12
    );
    assert!(!DynFdError::WalCorrupt { seq: 1, offset: 8 }.is_rejection());
    assert!(!DynFdError::SnapshotCorrupt { detail: "x".into() }.is_rejection());
}

/// A torn WAL tail is reported as `WalCorrupt` with the offset of the
/// truncation point, and the next recovery is clean (the truncation is
/// durable).
#[test]
fn torn_tail_reports_wal_corrupt_then_recovers_clean() {
    let trace = Trace::for_case(9, 1);
    let batches = trace.to_batches();
    assert!(batches.len() >= 2, "trace too short for the scenario");
    let config = DynFdConfig {
        snapshot_every: 0,
        ..DynFdConfig::default()
    };
    let scratch = Scratch::new("torn-tail-typed");
    let mut engine = FdEngine::create(&scratch.0, trace.to_relation(), config).unwrap();
    engine.apply_batch(&batches[0]).unwrap();
    let boundary = engine.wal_end_offset();
    engine.apply_batch(&batches[1]).unwrap();
    let end = engine.wal_end_offset();
    drop(engine);

    // Tear the log in the middle of the second frame.
    let path = wal_path(&scratch.0);
    let bytes = std::fs::read(&path).unwrap();
    let cut = (boundary as usize + end as usize) / 2;
    std::fs::write(&path, &bytes[..cut]).unwrap();

    let (recovered, report) = FdEngine::recover_with_config(&scratch.0, config).unwrap();
    match report.corruption {
        Some(DynFdError::WalCorrupt { seq, offset }) => {
            assert_eq!(seq, 2);
            assert_eq!(offset, boundary);
        }
        other => panic!("expected WalCorrupt, got {other:?}"),
    }
    assert_eq!(recovered.seq(), 1);
    drop(recovered);

    let (recovered, report) = FdEngine::recover_with_config(&scratch.0, config).unwrap();
    assert!(report.corruption.is_none(), "truncation must be durable");
    assert_eq!(recovered.seq(), 1);
}
