//! # dynfd
//!
//! Facade crate for the DynFD reproduction workspace. Re-exports the
//! public API of every member crate so applications can depend on a
//! single crate:
//!
//! * [`common`] — attribute sets, FDs, schemas, record ids.
//! * [`relation`] — the dynamic relation substrate (dictionaries, PLIs,
//!   compressed records, batches, the PLI validator).
//! * [`lattice`] — FD prefix trees, covers, and cover inversion.
//! * [`staticfd`] — static discovery algorithms (HyFD, TANE, FDEP).
//! * [`core`] — the DynFD maintenance algorithm itself.
//! * [`persist`] — durable engine state: checksummed batch WAL, atomic
//!   snapshots, and crash recovery ([`persist::FdEngine`]).
//! * [`serve`] — the multi-tenant concurrent serve layer: per-tenant
//!   durable engines behind a sharded worker pool, a framed wire
//!   protocol, and bounded admission ([`serve::ServeEngine`]).
//! * [`datagen`] — synthetic datasets and change histories shaped like
//!   the paper's six evaluation datasets.
//!
//! ## Quickstart
//!
//! ```
//! use dynfd::core::{DynFd, DynFdConfig};
//! use dynfd::relation::{Batch, DynamicRelation};
//! use dynfd::common::Schema;
//!
//! let schema = Schema::of("people", &["firstname", "lastname", "zip", "city"]);
//! let rel = DynamicRelation::from_rows(schema, &[
//!     vec!["Max", "Jones", "14482", "Potsdam"],
//!     vec!["Max", "Miller", "14482", "Potsdam"],
//!     vec!["Max", "Jones", "10115", "Berlin"],
//!     vec!["Anna", "Scott", "13591", "Berlin"],
//! ]).unwrap();
//!
//! // Bootstrap: static discovery + cover inversion.
//! let mut dynfd = DynFd::new(rel, DynFdConfig::default());
//! assert!(dynfd.minimal_fds().len() > 0);
//!
//! // Maintain under a batch of changes (Table 1 of the paper).
//! let mut batch = Batch::new();
//! batch.delete(dynfd.relation().record_ids().min().unwrap())
//!      .insert(vec!["Marie", "Scott", "14467", "Potsdam"]);
//! let result = dynfd.apply_batch(&batch).unwrap();
//! println!("+{} -{} minimal FDs", result.added.len(), result.removed.len());
//! ```

pub use dynfd_common as common;
pub use dynfd_core as core;
pub use dynfd_datagen as datagen;
pub use dynfd_lattice as lattice;
pub use dynfd_persist as persist;
pub use dynfd_relation as relation;
pub use dynfd_serve as serve;
pub use dynfd_static as staticfd;
