//! Table 3 — characteristics of the evaluation datasets.
//!
//! Reports, per dataset: column count, initial row count, change count,
//! initial and final minimal-FD counts, and the insert/delete/update
//! mix. The shapes (columns/rows/changes/mix) are the generator inputs
//! and must match the paper exactly at scale 1.0; the FD counts are
//! properties of the synthesized data and differ from the originals
//! (documented in DESIGN.md).

use crate::experiments::Ctx;
use crate::report::Table;
use crate::runner::run_dynfd;
use dynfd_core::DynFdConfig;

/// Runs the experiment and returns the rendered table.
pub fn run(ctx: &Ctx) -> Table {
    let mut table = Table::new(&[
        "Dataset",
        "#Columns",
        "#Rows",
        "#Changes",
        "#FDs(initial)",
        "#FDs(final)",
        "%Inserts",
        "%Deletes",
        "%Updates",
    ]);
    for name in ctx.names() {
        let data = ctx.dataset(name);
        let initial_fds = dynfd_static::hyfd::discover(&data.to_relation()).len();
        // Replay the full change history to count the final FDs.
        let outcome = run_dynfd(&data, 1_000, None, DynFdConfig::default());
        let (ins, del, upd) = data.change_mix();
        table.row(vec![
            name.to_string(),
            data.schema.arity().to_string(),
            data.initial_rows.len().to_string(),
            data.changes.len().to_string(),
            initial_fds.to_string(),
            outcome.final_fd_count.to_string(),
            format!("{ins:.1}"),
            format!("{del:.1}"),
            format!("{upd:.1}"),
        ]);
    }
    table
}
