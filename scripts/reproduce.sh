#!/usr/bin/env bash
# Full reproduction sequence for the DynFD evaluation.
#
# Usage: scripts/reproduce.sh [scale]
#   scale  optional dataset scale factor (default 1.0; e.g. 0.1 for a
#          quick pass on a laptop)
#
# Produces:
#   EXPERIMENTS-results/*.csv   one CSV per table/figure
#   test_output.txt             full test-suite log
#   bench_output.txt            criterion micro-bench log
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1.0}"

cargo build --release --workspace

# Paper artifacts: tables first (cheap), then the figure sweeps.
./target/release/experiments table3 table4 fig5 --scale "$SCALE"
./target/release/experiments fig6 fig8 fig9 fig10 fig11 ext --scale "$SCALE"
# Figure 7 re-runs static HyFD per batch — by far the most expensive.
./target/release/experiments fig7 --scale "$SCALE"

cargo test --workspace 2>&1 | tee test_output.txt
cargo bench --workspace 2>&1 | tee bench_output.txt
