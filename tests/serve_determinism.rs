//! Concurrency must be invisible per tenant: an interleaved
//! multi-tenant batch stream pushed through the `dynfd-serve` worker
//! pool has to leave every tenant in exactly the state a plain
//! sequential replay of its own batches produces — same relation, same
//! positive and negative covers, same §5.2 violation annotations, and
//! (durably) the same WAL bytes — **at any worker count**.
//!
//! The oracle lives in `dynfd_testkit::check_concurrent_serve`: it
//! replays N generated tenant traces round-robin interleaved on a
//! serve engine, quiesces, and diffs each tenant against a fresh
//! sequential replay with `DynFd::state_divergence` (bit-level), plus a
//! byte-for-byte WAL comparison for durable runs. These tests pin the
//! worker-count grid 1/2/8 — one worker (trivially sequential), two
//! (the smallest real interleaving), and eight (more workers than
//! shards are guaranteed distinct tenants, so every scheduling hazard
//! the pool can produce is in play).

use dynfd_testkit::check_concurrent_serve;
use proptest::prelude::*;
use std::path::PathBuf;

const SEED: u64 = 1709;
const TENANTS: usize = 6;

/// A scratch directory under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dynfd-serve-det-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn in_memory_state_identical_across_worker_counts() {
    for workers in [1usize, 2, 8] {
        let stats = check_concurrent_serve(SEED, TENANTS, workers, None)
            .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
        assert_eq!(stats.states_compared, TENANTS);
        assert_eq!(stats.workers, workers);
        assert!(stats.batches > 0, "trace set must contain work");
    }
}

#[test]
fn durable_wal_bytes_identical_across_worker_counts() {
    // The strongest form of the claim: not only the in-memory covers
    // but the *durable log itself* is bit-identical to what a
    // sequential per-tenant engine writes, whatever the worker count.
    for workers in [1usize, 2, 8] {
        let scratch = Scratch::new(&format!("wal-{workers}"));
        let stats = check_concurrent_serve(SEED, TENANTS, workers, Some(&scratch.0))
            .unwrap_or_else(|e| panic!("{workers} workers durable: {e}"));
        assert_eq!(stats.states_compared, TENANTS);
        assert_eq!(stats.wals_compared, TENANTS, "every tenant WAL compared");
    }
}

#[test]
fn eight_workers_more_tenants_than_shards() {
    // 12 tenants on 8 workers forces shard sharing: several tenants are
    // pinned to the same FIFO, which is exactly where cross-tenant
    // reordering bugs would live.
    let stats = check_concurrent_serve(SEED ^ 0xABCD, 12, 8, None).expect("12 tenants, 8 workers");
    assert_eq!(stats.states_compared, 12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seed-randomized form of the 8-worker property: any trace set,
    /// any tenant count 2–6, served on 8 workers, matches sequential
    /// replay bit for bit.
    #[test]
    fn random_seeds_serve_deterministically(seed in 0u64..1_000_000, tenants in 2usize..=6) {
        let stats = check_concurrent_serve(seed, tenants, 8, None)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(stats.states_compared, tenants);
    }
}
