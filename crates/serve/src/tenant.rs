//! A tenant: one independent relation with its own engine and queue
//! accounting.
//!
//! Tenants come in two backends. **Durable** tenants own an
//! [`FdEngine`] rooted in their own WAL directory (`<root>/<name>/`) —
//! re-opening a tenant recovers and resumes, and a server crash loses
//! at most batches never acknowledged. **Memory** tenants wrap a plain
//! [`DynFd`] for pure-throughput workloads (the load generator's
//! in-memory mode); they track their own sequence number so replies
//! look the same either way.
//!
//! The backend sits behind a `Mutex`, but it is not contended in steady
//! state: a tenant maps to exactly one worker shard, so only that shard
//! ever applies batches to it. The lock's real job is *poisoning* — a
//! panic that escapes the engine's own transactional boundary poisons
//! this tenant's lock only, and every later batch for the tenant is
//! answered with a typed error while all other tenants keep serving
//! (the isolation property `tests/tenant_isolation.rs` pins).

use crate::metrics::TenantMetrics;
use crate::queue::Gate;
use crate::ServeError;
use dynfd_core::{BatchResult, DynFd, DynFdError, DynFdResult};
use dynfd_persist::{CrashPlan, FdEngine};
use dynfd_relation::Batch;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The engine behind a tenant (see module docs).
pub(crate) enum Backend {
    /// Durable: WAL + snapshots in the tenant's own directory.
    Durable(FdEngine),
    /// In-memory engine plus its applied-batch counter.
    Memory(DynFd, u64),
}

impl Backend {
    /// Applies one batch and advances the sequence number.
    pub fn apply(&mut self, batch: &Batch) -> DynFdResult<BatchResult> {
        match self {
            Backend::Durable(engine) => engine.apply_batch(batch),
            Backend::Memory(engine, seq) => {
                let result = engine.apply_batch(batch)?;
                *seq += 1;
                Ok(result)
            }
        }
    }

    /// The wrapped in-memory engine.
    pub fn dynfd(&self) -> &DynFd {
        match self {
            Backend::Durable(engine) => engine.dynfd(),
            Backend::Memory(engine, _) => engine,
        }
    }

    /// Mutable access to the wrapped engine (failpoint arming).
    pub fn dynfd_mut(&mut self) -> &mut DynFd {
        match self {
            Backend::Durable(engine) => engine.dynfd_mut(),
            Backend::Memory(engine, _) => engine,
        }
    }

    /// Sequence number of the last applied batch.
    pub fn seq(&self) -> u64 {
        match self {
            Backend::Durable(engine) => engine.seq(),
            Backend::Memory(_, seq) => *seq,
        }
    }

    /// Fsyncs the WAL tail (no-op for memory tenants).
    pub fn sync(&mut self) -> std::io::Result<()> {
        match self {
            Backend::Durable(engine) => engine.sync_all(),
            Backend::Memory(..) => Ok(()),
        }
    }

    /// Persists the tenant for release: snapshot + WAL fsync, so the
    /// next `recover_or_create` restores from the snapshot instead of a
    /// long replay. No-op for memory tenants (their state dies with
    /// them by design).
    pub fn persist_for_release(&mut self) -> std::io::Result<()> {
        match self {
            Backend::Durable(engine) => {
                engine.snapshot()?;
                engine.sync_all()
            }
            Backend::Memory(..) => Ok(()),
        }
    }

    /// Arms a deterministic crash plan on the durable engine (crash
    /// harness; no-op for memory tenants).
    pub fn set_crash_plan(&mut self, plan: CrashPlan) {
        if let Backend::Durable(engine) = self {
            engine.set_crash_plan(plan);
        }
    }
}

/// One registered tenant.
pub(crate) struct Tenant {
    /// The tenant's wire name.
    pub name: String,
    /// Index of the worker shard that owns this tenant.
    pub shard: usize,
    /// The engine, locked per batch by the owning shard.
    pub backend: Mutex<Backend>,
    /// Admission gate bounding in-flight batches.
    pub gate: Gate,
    /// Telemetry.
    pub metrics: TenantMetrics,
    /// Set while an eviction drains this tenant; admissions are
    /// answered with [`ServeError::Evicted`] until the registry entry
    /// is gone (then they get `UnknownTenant`).
    pub closing: AtomicBool,
    /// Resident-byte estimate after the last applied batch
    /// (`DynFd::resident_bytes`), cached here so admission-time quota
    /// checks never touch the engine lock.
    pub resident_bytes: AtomicU64,
    /// Cumulative wall-clock nanoseconds spent inside `apply` — the
    /// meter behind the CPU quota.
    pub cpu_nanos: AtomicU64,
    /// Engine-wide admission tick of the last admitted batch; the LRU
    /// key for global-budget auto-eviction.
    pub last_admitted: AtomicU64,
    /// Consecutive governance rejections since the last admission;
    /// drives the exponential retry-after hint.
    pub reject_streak: AtomicU64,
}

impl Tenant {
    pub fn new(name: String, shard: usize, backend: Backend) -> Tenant {
        let resident = backend.dynfd().resident_bytes() as u64;
        Tenant {
            name,
            shard,
            backend: Mutex::new(backend),
            gate: Gate::new(),
            metrics: TenantMetrics::default(),
            closing: AtomicBool::new(false),
            resident_bytes: AtomicU64::new(resident),
            cpu_nanos: AtomicU64::new(0),
            last_admitted: AtomicU64::new(0),
            reject_streak: AtomicU64::new(0),
        }
    }

    /// Base retry-after hint in milliseconds.
    const RETRY_BASE_MS: u64 = 10;
    /// Cap exponent: hints stop doubling at `base << CAP` (1280 ms).
    const RETRY_CAP: u32 = 7;

    /// Bumps the rejection streak and returns the retry-after hint for
    /// this rejection: `base × 2^min(streak-1, cap)`. Deterministic
    /// given the admission/rejection sequence, monotone while the
    /// streak grows, reset by [`Tenant::note_admitted`].
    pub fn next_retry_after_ms(&self) -> u64 {
        let streak = self.reject_streak.fetch_add(1, Ordering::Relaxed) + 1;
        let exp = (streak - 1).min(Self::RETRY_CAP as u64) as u32;
        Self::RETRY_BASE_MS << exp
    }

    /// Records a successful admission: resets the rejection streak and
    /// stamps the LRU tick.
    pub fn note_admitted(&self, tick: u64) {
        self.reject_streak.store(0, Ordering::Relaxed);
        self.last_admitted.store(tick, Ordering::Relaxed);
    }

    /// Runs `f` on the tenant's engine, turning a poisoned lock (an
    /// earlier escaped panic) into the typed per-tenant error instead of
    /// propagating the poison.
    pub fn with_backend<R>(&self, f: impl FnOnce(&mut Backend) -> R) -> Result<R, ServeError> {
        match self.backend.lock() {
            Ok(mut backend) => Ok(f(&mut backend)),
            Err(_) => Err(ServeError::Engine(DynFdError::PhasePanicked {
                phase: "serve-worker",
                detail: format!("tenant {:?} is poisoned by an earlier panic", self.name),
            })),
        }
    }
}

/// Validates a tenant name for use as a directory component: non-empty,
/// at most 128 bytes, `[A-Za-z0-9_.-]` only, and not `.`/`..`. Keeps
/// wire-supplied names from escaping the durable root.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name != "."
        && name != ".."
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_names_cannot_traverse_paths() {
        for good in ["t0", "orders-2026", "a.b_c", "X"] {
            assert!(valid_tenant_name(good), "{good:?} should be valid");
        }
        for bad in ["", ".", "..", "a/b", "a\\b", "a b", "é", &"x".repeat(129)] {
            assert!(!valid_tenant_name(bad), "{bad:?} should be rejected");
        }
    }
}
