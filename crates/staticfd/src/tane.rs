//! TANE-style level-wise FD discovery [8].
//!
//! The search space is the powerset lattice of attribute sets, traversed
//! bottom-up level by level (paper Section 7.1). For every LHS at the
//! current level the plausible RHS candidates — those without an
//! already-valid generalization — are validated simultaneously against
//! the stripped partitions (PLIs). Valid candidates enter the positive
//! cover; branches whose RHS candidate set becomes empty are pruned.
//!
//! This implementation reuses the shared PLI validator (its lazy
//! partition intersection is the modern formulation of TANE's partition
//! refinement) and the `FdTree` cover. It is exponential in the number
//! of attributes, as all complete lattice algorithms are; within this
//! workspace it serves as a correctness oracle and as the column-based
//! representative in the algorithm comparison benches.

use dynfd_common::{AttrSet, Fd};
use dynfd_lattice::FdTree;
use dynfd_relation::{validate, DynamicRelation, ValidationOptions};

/// Discovers all minimal, non-trivial FDs of `rel` via level-wise
/// lattice traversal.
pub fn discover(rel: &DynamicRelation) -> FdTree {
    if rel.len() < 2 {
        return crate::trivial_cover(rel);
    }
    let arity = rel.arity();
    let mut fds = FdTree::new();
    let full = ValidationOptions::full();

    // Level 0: the empty LHS.
    let mut level: Vec<AttrSet> = vec![AttrSet::empty()];
    let mut level_no = 0usize;

    while !level.is_empty() && level_no < arity {
        let mut next: Vec<AttrSet> = Vec::new();
        for lhs in level {
            // RHS candidates: non-trivial and not implied by an already
            // valid (hence more general, hence earlier-validated) FD.
            let mut rhs_candidates = AttrSet::empty();
            for r in 0..arity {
                if !lhs.contains(r) && !fds.contains_generalization(lhs, r) {
                    rhs_candidates.insert(r);
                }
            }
            let mut undetermined = 0usize;
            if !rhs_candidates.is_empty() {
                let result = validate(rel, lhs, rhs_candidates, &full);
                for (r, outcome) in &result.outcomes {
                    if outcome.is_valid() {
                        fds.add(lhs, *r);
                    } else {
                        undetermined += 1;
                    }
                }
            }
            // Extension pruning: a branch only matters while some RHS is
            // still undetermined for it (an invalid candidate might turn
            // valid with a larger LHS). Key pruning falls out for free:
            // a key LHS validates every RHS, leaving nothing undetermined.
            if undetermined > 0 {
                let start = lhs.last().map_or(0, |a| a + 1);
                for b in start..arity {
                    next.push(lhs.with(b));
                }
            }
        }
        level = next;
        level_no += 1;
    }
    fds
}

/// Convenience: discovery result as a sorted `Vec<Fd>`.
pub fn discover_vec(rel: &DynamicRelation) -> Vec<Fd> {
    discover(rel).all_fds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{paper_relation, random_relation, rel};

    fn s(attrs: &[usize]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    #[test]
    fn paper_example_minimal_fds() {
        // Figure 2: exactly l→f, z→f, z→c, fc→z, lc→z.
        let fds = discover(&paper_relation());
        let expect: FdTree = [
            (s(&[1]), 0),
            (s(&[2]), 0),
            (s(&[2]), 3),
            (s(&[0, 3]), 2),
            (s(&[1, 3]), 2),
        ]
        .into_iter()
        .map(|(l, r)| Fd::new(l, r))
        .collect();
        assert_eq!(fds, expect);
    }

    #[test]
    fn empty_and_single_row_relations() {
        let empty = rel(&[]);
        assert_eq!(discover(&empty).len(), 2); // ∅ -> A for both columns
        let one = rel(&[&["a", "b", "c"]]);
        let fds = discover(&one);
        assert_eq!(fds.len(), 3);
        assert!(fds.contains(AttrSet::empty(), 0));
    }

    #[test]
    fn constant_column_gives_empty_lhs_fd() {
        let r = rel(&[&["k", "1"], &["k", "2"], &["k", "3"]]);
        let fds = discover(&r);
        assert!(fds.contains(AttrSet::empty(), 0));
        // Column 1 is a key, so 1 -> 0 holds but is subsumed by ∅ -> 0;
        // the only other minimal FD is... none for rhs 1 (nothing
        // determines the key but itself — and {0} is constant).
        assert!(!fds.contains_generalization(s(&[0]), 1));
    }

    #[test]
    fn key_column_determines_everything() {
        let r = rel(&[&["1", "x", "p"], &["2", "x", "q"], &["3", "y", "p"]]);
        let fds = discover(&r);
        assert!(fds.contains(s(&[0]), 1));
        assert!(fds.contains(s(&[0]), 2));
    }

    #[test]
    fn output_is_minimal_and_valid() {
        for seed in 0..5u64 {
            let r = random_relation(seed, 60, 5, 3);
            let fds = discover(&r);
            assert!(fds.is_antichain(), "non-minimal cover for seed {seed}");
            for fd in fds.all_fds() {
                assert!(
                    dynfd_relation::validate_fd(&r, &fd, &ValidationOptions::full()).is_valid(),
                    "seed {seed}: discovered fd {fd:?} does not hold"
                );
            }
        }
    }

    #[test]
    fn completeness_against_brute_force() {
        // Exhaustively check every candidate on small random relations.
        for seed in 0..3u64 {
            let r = random_relation(seed + 100, 30, 4, 3);
            let fds = discover(&r);
            let arity = r.arity();
            for rhs in 0..arity {
                for mask in 0..(1u32 << arity) {
                    let lhs: AttrSet = (0..arity).filter(|&a| mask >> a & 1 == 1).collect();
                    if lhs.contains(rhs) {
                        continue;
                    }
                    let holds = dynfd_relation::validate_fd(
                        &r,
                        &Fd::new(lhs, rhs),
                        &ValidationOptions::full(),
                    )
                    .is_valid();
                    assert_eq!(
                        fds.contains_generalization(lhs, rhs),
                        holds,
                        "seed {seed}: cover disagrees on {lhs:?} -> {rhs}"
                    );
                }
            }
        }
    }
}
