//! Deterministic fault injection for the maintenance pipeline.
//!
//! A [`FailPoint`] armed on a [`DynFd`] instance trips once, at a
//! deterministic point of the *next* batch: when the named phase has
//! issued at least `after_validations` candidate validations. The
//! trigger is keyed on [`BatchMetrics::validation_jobs`], which is
//! invariant under the worker-thread count, so an injected fault fires
//! at the same logical point whether the engine runs on one thread or
//! sixteen. The failpoint disarms itself *before* acting, so a retry of
//! the same batch after the injected failure succeeds — exactly the
//! recovery story the transactional boundary promises.
//!
//! This lives in the engine (rather than the testkit) because the
//! interesting failure points are inside `pub(crate)` phase internals;
//! the public surface is the single [`DynFd::arm_failpoint`] method.

use crate::{BatchMetrics, DynFd};

/// Which maintenance phase an armed [`FailPoint`] targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailPhase {
    /// The delete phase (Algorithm 4), after a level's verdicts applied.
    DeletePhase,
    /// The insert phase (Algorithm 2), after a level's verdicts applied.
    InsertPhase,
}

/// What happens when an armed [`FailPoint`] trips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a recognizable message — exercises the `catch_unwind`
    /// rollback path of [`DynFd::apply_batch`].
    Panic,
    /// Silently corrupt the positive cover without touching the
    /// negative cover — plants exactly the cover drift that
    /// [`DynFd::verify_consistency`] (and the cheap antichain/inversion
    /// check) must detect, exercising the degraded-mode rebuild. The
    /// corruption is a *redundant specialization* of an existing minimal
    /// FD: it holds on the data, so neither phase's validations nor the
    /// violation search will ever remove it — unlike a dropped FD, which
    /// the running batch may coincidentally have removed anyway. If no
    /// specialization slot exists (saturated LHS), the last cover FD is
    /// dropped instead.
    DropCoverFd,
}

/// A one-shot injected fault (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailPoint {
    /// The phase in which to trip.
    pub phase: FailPhase,
    /// Trip once the phase's cumulative validation-job count for the
    /// current batch reaches this value. `0` trips at the phase's first
    /// check point.
    pub after_validations: usize,
    /// What to do when tripping.
    pub action: FailAction,
}

impl DynFd {
    /// Arms `fp` for the next batch. At most one failpoint is armed at a
    /// time; arming replaces any previous one. The failpoint disarms
    /// itself when it trips (or stays armed if its condition is never
    /// reached, e.g. the targeted phase does not run).
    pub fn arm_failpoint(&mut self, fp: FailPoint) {
        self.failpoint = Some(fp);
    }

    /// The currently armed failpoint, if any.
    pub fn armed_failpoint(&self) -> Option<FailPoint> {
        self.failpoint
    }

    /// Removes the armed failpoint (if any) without tripping it. Useful
    /// for harnesses that arm speculatively: a failpoint whose condition
    /// was never reached stays armed and would otherwise leak into the
    /// next batch.
    pub fn disarm_failpoint(&mut self) {
        self.failpoint = None;
    }

    /// Phase-internal check point: trips the armed failpoint if its
    /// condition is met. Panics (by design) for [`FailAction::Panic`].
    pub(crate) fn failpoint_check(&mut self, phase: FailPhase, metrics: &BatchMetrics) {
        let Some(fp) = self.failpoint else {
            return;
        };
        if fp.phase != phase || metrics.validation_jobs() < fp.after_validations {
            return;
        }
        // Disarm before acting so a retried batch runs clean.
        self.failpoint = None;
        match fp.action {
            FailAction::Panic => panic!(
                "injected failpoint: {:?} after {} validations",
                phase,
                metrics.validation_jobs()
            ),
            FailAction::DropCoverFd => {
                let all = self.fds.all_fds();
                let arity = self.rel.arity();
                let planted = all.iter().find_map(|fd| {
                    (0..arity)
                        .find(|&a| a != fd.rhs && !fd.lhs.contains(a))
                        .map(|a| (fd.lhs.with(a), fd.rhs))
                });
                match planted {
                    Some((lhs, rhs)) => {
                        self.fds.add(lhs, rhs);
                    }
                    None => {
                        if let Some(fd) = all.last() {
                            self.fds.remove(fd.lhs, fd.rhs);
                        }
                    }
                }
            }
        }
    }
}
