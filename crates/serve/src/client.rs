//! Client-side session helper: synchronous submit with
//! jittered-exponential-backoff retry.
//!
//! The engine's governance rejections (overload, quota, eviction
//! window) carry a machine-readable `retry_after_ms` hint that grows
//! with the tenant's consecutive-rejection streak. A compliant client
//! treats the hint as a *floor*: it sleeps `max(hint, base × 2^retry)`
//! plus bounded jitter, so a fleet of rejected clients neither hammers
//! the server (the hint floor) nor stampedes back in lockstep (the
//! jitter). Rejections without a hint — missed deadlines, unknown
//! tenants, engine rejections, shutdown — are the caller's problem and
//! are returned immediately.
//!
//! The jitter PRNG is a seeded splitmix64, so a fixed
//! [`RetryPolicy::seed`] makes the whole retry schedule reproducible —
//! the property the overload-governance proptests replay.

use crate::server::{ApplySummary, ServeEngine};
use crate::transport::{ListenAddr, Stream};
use crate::wire::{self, FrameIo, Request, Response};
use crate::{
    ServeError, CODE_DEADLINE_EXCEEDED, CODE_SESSION, CODE_SHUTTING_DOWN, CODE_SLOW_CLIENT,
};
use dynfd_relation::Batch;
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;

/// Backoff schedule for [`submit_with_retry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry backoff (doubles per consecutive rejection).
    pub base: Duration,
    /// Ceiling on a single computed backoff (the server hint may still
    /// exceed it — the hint always wins as a floor).
    pub cap: Duration,
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(640),
            max_attempts: 8,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

/// What one [`submit_with_retry`] call did end to end.
#[derive(Debug)]
pub struct RetryReport {
    /// Attempts made (>= 1).
    pub attempts: u32,
    /// Total time slept between attempts.
    pub backoff_total: Duration,
    /// Retry-after hints observed, in order — the overload-governance
    /// proptests assert these are monotone under sustained pressure.
    pub hints_ms: Vec<u64>,
    /// The final outcome: the applied batch's summary, or the error
    /// that was not retryable (or exhausted the attempt budget).
    pub outcome: Result<ApplySummary, ServeError>,
}

impl RetryReport {
    /// Whether the batch was eventually applied.
    pub fn succeeded(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// splitmix64 step: a tiny, seedable, statistically fine generator for
/// jitter — no dependency, fully deterministic per [`RetryPolicy::seed`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One jittered backoff step: `max(server hint, base × 2^retry, capped)
/// + jitter`, jitter uniform over half the floor. Shared by the
/// in-process [`submit_with_retry`] and the reconnecting
/// [`SessionClient`], so both back off on the same schedule.
fn backoff_for(policy: &RetryPolicy, retry: u32, hint_ms: u64, rng: &mut u64) -> Duration {
    let exp = policy
        .base
        .saturating_mul(1u32 << retry.min(16))
        .min(policy.cap);
    let floor = Duration::from_millis(hint_ms).max(exp);
    let jitter_range = (floor / 2).as_millis().min(u64::MAX as u128) as u64;
    let jitter = if jitter_range == 0 {
        0
    } else {
        splitmix64(rng) % jitter_range
    };
    floor + Duration::from_millis(jitter)
}

/// Submits `batch` and blocks for the reply, retrying governance
/// rejections per `policy`. Each retry sleeps
/// `max(server hint, base × 2^retry, capped) + jitter` where the jitter
/// is uniform over half the computed backoff (decorrelates clients
/// that were rejected together). Non-governance errors and exhausted
/// attempts are returned in the report without further retries.
pub fn submit_with_retry(
    engine: &ServeEngine,
    tenant: &str,
    request_id: u64,
    batch: &Batch,
    deadline: Option<Duration>,
    policy: &RetryPolicy,
) -> RetryReport {
    let mut rng = policy.seed;
    let mut report = RetryReport {
        attempts: 0,
        backoff_total: Duration::ZERO,
        hints_ms: Vec::new(),
        outcome: Err(ServeError::ShuttingDown),
    };
    let attempts = policy.max_attempts.max(1);
    for retry in 0..attempts {
        report.attempts = retry + 1;
        let (tx, rx) = mpsc::channel();
        let submitted = engine.submit_with_deadline(
            tenant,
            request_id,
            batch.clone(),
            deadline,
            move |reply| {
                // The submitter may have given up; a dead receiver is
                // fine, the reply is simply dropped.
                let _ = tx.send(reply.outcome);
            },
        );
        let outcome = match submitted {
            // Admitted: the completion fires exactly once.
            Ok(()) => match rx.recv() {
                Ok(outcome) => outcome,
                Err(_) => Err(ServeError::ShuttingDown),
            },
            Err(rejected) => Err(rejected),
        };
        let hint = match &outcome {
            Err(e) => e.retry_after_ms(),
            Ok(_) => None,
        };
        let Some(hint_ms) = hint else {
            report.outcome = outcome;
            return report;
        };
        report.hints_ms.push(hint_ms);
        if retry + 1 == attempts {
            report.outcome = outcome;
            return report;
        }
        let sleep = backoff_for(policy, retry, hint_ms, &mut rng);
        report.backoff_total += sleep;
        std::thread::sleep(sleep);
        report.outcome = outcome;
    }
    report
}

/// Telemetry of one [`SessionClient`]'s lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionClientReport {
    /// Successful dials (first connect + reconnects).
    pub connects: u64,
    /// Reconnects after a drop, timeout, shed, or drain notice.
    pub reconnects: u64,
    /// Unacked frames re-sent verbatim after a reconnect or silence.
    pub resends: u64,
    /// Fresh-sequence retries after settled governance rejections.
    pub retries: u64,
    /// `Hello` responses whose epoch was > 1 (the server resumed us).
    pub resumed: u64,
    /// Total time slept in reconnect/retry backoff.
    pub backoff_total: Duration,
}

/// A reconnecting socket client with exactly-once apply semantics.
///
/// Extends [`submit_with_retry`]'s jittered-backoff discipline across
/// the network boundary: every connection starts with a `Hello` naming
/// this client's session, every apply carries a per-tenant monotone
/// `session_seq`, and an unacked frame is re-sent **verbatim** (same
/// request id, same sequence) after a drop — the server deduplicates,
/// so the batch applies exactly once no matter how many times the
/// network forces a re-send (see `crate::resume`).
///
/// Settled governance rejections (backoff hints, missed deadlines) are
/// retried with a *fresh* sequence number, mirroring the in-process
/// helper. One request is in flight at a time; stale duplicate
/// responses (possible after replays) are dropped by request-id.
pub struct SessionClient {
    addr: ListenAddr,
    session: String,
    policy: RetryPolicy,
    rng: u64,
    /// Response-wait tick (client-side read deadline granularity).
    tick: Duration,
    /// Silence budget: no response for this long forces a reconnect
    /// and a re-send of the in-flight frame.
    patience: Duration,
    next_request_id: u64,
    next_seq: HashMap<String, u64>,
    conn: Option<FrameIo<Stream>>,
    report: SessionClientReport,
}

impl SessionClient {
    /// A client for `addr` under session id `session` (stable across
    /// reconnects — reuse the same id to resume). Does not dial yet;
    /// the first request connects lazily.
    pub fn new(addr: ListenAddr, session: impl Into<String>, policy: RetryPolicy) -> SessionClient {
        let policy_seed = policy.seed;
        SessionClient {
            addr,
            session: session.into(),
            policy,
            rng: policy_seed,
            tick: Duration::from_millis(25),
            patience: Duration::from_millis(2000),
            next_request_id: 1,
            next_seq: HashMap::new(),
            conn: None,
            report: SessionClientReport::default(),
        }
    }

    /// Overrides the silence budget after which the in-flight frame is
    /// re-sent over a fresh connection.
    pub fn with_patience(mut self, patience: Duration) -> SessionClient {
        self.patience = patience.max(Duration::from_millis(10));
        self
    }

    /// What this client did so far.
    pub fn report(&self) -> SessionClientReport {
        self.report
    }

    /// The next sequence this client will assign for `tenant` minus
    /// one: how many sequences it has consumed.
    pub fn seqs_consumed(&self, tenant: &str) -> u64 {
        self.next_seq.get(tenant).map_or(0, |s| s - 1)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id += 1;
        id
    }

    fn drop_conn(&mut self) {
        if let Some(io) = self.conn.take() {
            io.get_ref().shutdown();
        }
    }

    /// Dials, arms client-side deadlines, and performs the `Hello`
    /// handshake. Responses that are not the hello ack (late replays
    /// from a previous incarnation) are discarded — the pending frame
    /// is re-sent afterwards anyway and answered from the replay window.
    fn try_connect(&mut self) -> Result<(), String> {
        self.drop_conn();
        let stream = Stream::connect(&self.addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_client_timeouts(self.tick, Duration::from_secs(5))
            .map_err(|e| format!("set timeouts: {e}"))?;
        let mut io = FrameIo::new(stream);
        let hello_id = self.fresh_id();
        let hello = wire::encode_request(&Request::Hello {
            request_id: hello_id,
            session_id: self.session.clone(),
        });
        io.write(&hello).map_err(|e| format!("hello write: {e}"))?;
        let mut waited = Duration::ZERO;
        loop {
            match io.read() {
                Ok(Some(payload)) => match wire::decode_response(&payload) {
                    Ok(resp) if resp.request_id == hello_id => {
                        if resp.code != 0 {
                            return Err(format!(
                                "hello rejected (code {}): {}",
                                resp.code, resp.detail
                            ));
                        }
                        if resp.seq > 1 {
                            self.report.resumed += 1;
                        }
                        self.conn = Some(io);
                        self.report.connects += 1;
                        return Ok(());
                    }
                    Ok(_) => continue,
                    Err(e) => return Err(format!("hello response: {e}")),
                },
                Ok(None) => return Err("connection closed during hello".into()),
                Err(e) if e.is_timeout() => {
                    waited += self.tick;
                    if waited >= self.patience {
                        return Err("hello timed out".into());
                    }
                }
                Err(e) => return Err(format!("hello read: {e}")),
            }
        }
    }

    /// Sends `frame` (re-sending across reconnects as needed) until a
    /// response for `request_id` arrives. The reconnect budget is
    /// [`RetryPolicy::max_attempts`] with jittered backoff.
    fn deliver(&mut self, frame: &[u8], request_id: u64) -> Result<Response, String> {
        let mut reconnects = 0u32;
        let mut sent_once = false;
        let mut last_err = String::from("no attempt made");
        while reconnects < self.policy.max_attempts.max(1) {
            if self.conn.is_none() {
                if reconnects > 0 || self.report.connects > 0 {
                    let sleep = backoff_for(&self.policy, reconnects, 0, &mut self.rng);
                    self.report.backoff_total += sleep;
                    std::thread::sleep(sleep);
                }
                match self.try_connect() {
                    Ok(()) => {
                        if sent_once {
                            self.report.reconnects += 1;
                        }
                    }
                    Err(e) => {
                        reconnects += 1;
                        last_err = e;
                        continue;
                    }
                }
                // Fresh connection: the in-flight frame (if any) must
                // ride it again.
                if sent_once {
                    self.report.resends += 1;
                }
            }
            let Some(io) = self.conn.as_mut() else {
                continue;
            };
            if io.write(frame).is_err() {
                self.drop_conn();
                reconnects += 1;
                last_err = "write failed".into();
                continue;
            }
            sent_once = true;
            // Await the matching response.
            let mut quiet = Duration::ZERO;
            while let Some(io) = self.conn.as_mut() {
                match io.read() {
                    Ok(Some(payload)) => {
                        quiet = Duration::ZERO;
                        let Ok(resp) = wire::decode_response(&payload) else {
                            self.drop_conn();
                            reconnects += 1;
                            last_err = "undecodable response".into();
                            break;
                        };
                        if resp.request_id == request_id {
                            return Ok(resp);
                        }
                        if resp.request_id == 0
                            && (u32::from(resp.code) == CODE_SHUTTING_DOWN
                                || u32::from(resp.code) == CODE_SLOW_CLIENT)
                        {
                            // Drain notice or shed: this connection is
                            // over; resume elsewhere.
                            self.drop_conn();
                            reconnects += 1;
                            last_err = format!("server notice code {}", resp.code);
                            break;
                        }
                        // A stale duplicate for an earlier request:
                        // replays make responses at-least-once. Drop it.
                    }
                    Ok(None) => {
                        self.drop_conn();
                        reconnects += 1;
                        last_err = "connection closed".into();
                        break;
                    }
                    Err(e) if e.is_timeout() => {
                        quiet += self.tick;
                        if quiet >= self.patience {
                            // Silence: assume the frame or its response
                            // was lost; re-send over a new connection.
                            self.drop_conn();
                            reconnects += 1;
                            last_err = "response timed out".into();
                            break;
                        }
                    }
                    Err(e) => {
                        self.drop_conn();
                        reconnects += 1;
                        last_err = format!("read: {e}");
                        break;
                    }
                }
            }
        }
        Err(format!(
            "request {request_id} undeliverable after {reconnects} reconnect attempts: {last_err}"
        ))
    }

    /// Opens (or recovers) `tenant`. Not sessioned: `Open` is
    /// idempotent for our purposes, so a re-send racing a successful
    /// first delivery may answer `TenantExists` (code 15) — callers
    /// treat both as success.
    pub fn open(
        &mut self,
        tenant: &str,
        columns: &[String],
        rows: &[Vec<String>],
    ) -> Result<Response, String> {
        let request_id = self.fresh_id();
        let frame = wire::encode_request(&Request::Open {
            request_id,
            tenant: tenant.to_string(),
            columns: columns.to_vec(),
            rows: rows.to_vec(),
        });
        self.deliver(&frame, request_id)
    }

    /// Applies `batch` to `tenant` exactly once, reconnecting and
    /// re-sending as needed. Settled governance rejections (a
    /// `retry_after_ms` hint, or a missed deadline) consume their
    /// sequence and are retried with a fresh one, up to the policy
    /// budget; any other settled outcome is returned as-is.
    pub fn apply(
        &mut self,
        tenant: &str,
        batch: &Batch,
        deadline_ms: u64,
    ) -> Result<Response, String> {
        let attempts = self.policy.max_attempts.max(1);
        for retry in 0..attempts {
            let seq = *self.next_seq.entry(tenant.to_string()).or_insert(1);
            let request_id = self.fresh_id();
            let frame = wire::encode_request(&Request::Apply {
                request_id,
                tenant: tenant.to_string(),
                deadline_ms,
                session_seq: seq,
                batch: batch.clone(),
            });
            let resp = self.deliver(&frame, request_id)?;
            // Whatever settled consumed the sequence.
            if let Some(s) = self.next_seq.get_mut(tenant) {
                *s += 1;
            }
            let retryable =
                resp.retry_after_ms > 0 || u32::from(resp.code) == CODE_DEADLINE_EXCEEDED;
            if resp.code == 0 || !retryable {
                if u32::from(resp.code) == CODE_SESSION {
                    return Err(format!("session protocol violation: {}", resp.detail));
                }
                return Ok(resp);
            }
            if retry + 1 == attempts {
                return Ok(resp);
            }
            self.report.retries += 1;
            let sleep = backoff_for(&self.policy, retry, resp.retry_after_ms, &mut self.rng);
            self.report.backoff_total += sleep;
            std::thread::sleep(sleep);
        }
        Err("retry budget exhausted".into())
    }

    /// Closes (evicts) `tenant` on the server.
    pub fn close_tenant(&mut self, tenant: &str) -> Result<Response, String> {
        let request_id = self.fresh_id();
        let frame = wire::encode_request(&Request::Close {
            request_id,
            tenant: tenant.to_string(),
        });
        self.deliver(&frame, request_id)
    }

    /// Asks the server to drain and shut down (best-effort, no retry —
    /// the server may be gone before the ack).
    pub fn shutdown_server(&mut self) -> Result<Response, String> {
        let request_id = self.fresh_id();
        let frame = wire::encode_request(&Request::Shutdown { request_id });
        if self.conn.is_none() {
            self.try_connect()?;
        }
        let Some(io) = self.conn.as_mut() else {
            return Err("not connected".into());
        };
        io.write(&frame).map_err(|e| format!("write: {e}"))?;
        let mut waited = Duration::ZERO;
        loop {
            let Some(io) = self.conn.as_mut() else {
                return Err("not connected".into());
            };
            match io.read() {
                Ok(Some(payload)) => {
                    if let Ok(resp) = wire::decode_response(&payload) {
                        if resp.request_id == request_id {
                            return Ok(resp);
                        }
                    }
                }
                Ok(None) => return Err("connection closed before shutdown ack".into()),
                Err(e) if e.is_timeout() => {
                    waited += self.tick;
                    if waited >= self.patience {
                        return Err("shutdown ack timed out".into());
                    }
                }
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }

    /// Drops the connection (the session survives server-side; a new
    /// client with the same session id resumes it).
    pub fn disconnect(&mut self) {
        self.drop_conn();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stream_is_deterministic_per_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        let first: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let second: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(first, second);
        let mut c = 43u64;
        let third: Vec<u64> = (0..8).map(|_| splitmix64(&mut c)).collect();
        assert_ne!(first, third);
    }

    #[test]
    fn default_policy_backoff_is_bounded() {
        let p = RetryPolicy::default();
        // base × 2^7 = 640ms hits the cap exactly; deeper retries must
        // not overflow or exceed it.
        let exp = p.base.saturating_mul(1u32 << 16).min(p.cap);
        assert_eq!(exp, p.cap);
    }
}
