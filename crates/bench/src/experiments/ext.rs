//! Extensions ablation (beyond the paper) — the Section 8 future-work
//! features implemented in this reproduction:
//!
//! * **key-constraint pruning**: the generator's first column is a
//!   surrogate key in every profile, so declaring it exercises the
//!   pruning on every dataset;
//! * **update pruning**: pays off on the update-heavy histories (`cpu`,
//!   `disease`) where most batches are pure updates touching few
//!   attributes.
//!
//! All four paper strategies stay enabled; rows compare the extensions
//! on top. Skip counters quantify how much validation work each
//! extension removes.

use crate::experiments::{Ctx, CHANGE_CAP};
use crate::report::{ms, Table};
use crate::runner::run_dynfd;
use dynfd_common::AttrSet;
use dynfd_core::DynFdConfig;

/// Runs the experiment and returns the rendered table.
pub fn run(ctx: &Ctx) -> Table {
    let mut table = Table::new(&[
        "Dataset",
        "Extensions",
        "runtime[ms]",
        "fd validations",
        "non-FD validations",
        "skipped(key)",
        "skipped(update)",
    ]);
    for name in ctx.names() {
        let data = ctx.dataset(name);
        let variants: Vec<(&str, DynFdConfig)> = vec![
            ("paper strategies only", DynFdConfig::default()),
            (
                "+ key constraint",
                DynFdConfig {
                    known_keys: AttrSet::single(0),
                    ..DynFdConfig::default()
                },
            ),
            (
                "+ update pruning",
                DynFdConfig {
                    update_pruning: true,
                    ..DynFdConfig::default()
                },
            ),
            (
                "+ both",
                DynFdConfig {
                    known_keys: AttrSet::single(0),
                    update_pruning: true,
                    ..DynFdConfig::default()
                },
            ),
        ];
        for (label, config) in variants {
            let out = run_dynfd(&data, 100, Some(CHANGE_CAP), config);
            table.row(vec![
                name.to_string(),
                label.to_string(),
                ms(out.total.as_secs_f64() * 1_000.0),
                out.metrics.fd_validations.to_string(),
                out.metrics.non_fd_validations.to_string(),
                out.metrics.skipped_by_key_constraint.to_string(),
                out.metrics.skipped_by_update_pruning.to_string(),
            ]);
        }
    }
    table
}
