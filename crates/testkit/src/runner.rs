//! The differential runner.
//!
//! For each pruning configuration, the runner replays a [`Trace`]
//! through [`DynFd`] and checks, after the bootstrap and after every
//! batch, that the maintained positive cover equals what every static
//! oracle (TANE, FDEP, HyFD) discovers from scratch on the materialized
//! relation — the paper's central claim (§1: maintained covers are
//! *exactly* what a static re-run would find).
//!
//! On top of the oracle checks it verifies four **metamorphic
//! invariants** that need no oracle at all:
//!
//! 1. **cover-inversion round-trip** (Algorithm 1): the maintained
//!    negative cover equals the inversion of the positive cover, and
//!    inducing a positive cover back from it returns the original;
//! 2. **batch-splitting equivalence**: replaying the same resolved op
//!    stream in batches of 1 (and of `2 × batch_size`) lands on the
//!    identical covers;
//! 3. **row-permutation invariance**: FD covers are a function of the
//!    row *multiset* — bootstrapping a fresh instance over the final
//!    rows in permuted order reproduces the maintained cover;
//! 4. **insert-then-delete round-trip**: inserting a wave of rows and
//!    deleting exactly those rows again restores both covers.
//!
//! A [`CoverFault`] can be injected to perturb the cover the checks
//! observe — the test suite uses this to demonstrate end to end that a
//! cover bug is caught and shrunk to a minimal repro.
//!
//! An [`EngineFault`] goes further and attacks the *engine itself* while
//! the differential checks keep running: poisoned batches that must be
//! rejected atomically, mid-batch panics injected at seeded points via
//! the engine's failpoints (the batch must roll back bit-identically and
//! succeed on retry), and silent cover corruption that the degraded-mode
//! consistency check must detect and repair before the oracles look.

use crate::Trace;
use dynfd_core::{ConsistencyLevel, DynFd, DynFdConfig, FailAction, FailPhase, FailPoint};
use dynfd_lattice::{induce_from_negative_cover, invert_positive_cover, FdTree};
use dynfd_relation::{Batch, ChangeOp, DynamicRelation};
use dynfd_static::Oracle;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// A deliberate perturbation of the observed positive cover, used to
/// prove the harness catches cover bugs (and to exercise the shrinker).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverFault {
    /// Drop the deterministically-first FD from every non-empty cover
    /// observation — models a lost minimal FD.
    DropFirstFd,
    /// Add a fabricated specialization of the first FD — models a
    /// non-minimal (or plain wrong) FD surviving in the cover.
    AddBogusFd,
}

impl CoverFault {
    /// Applies the fault to an observed cover.
    pub fn apply(self, cover: &FdTree, arity: usize) -> FdTree {
        let fds = cover.all_fds();
        let Some(first) = fds.first() else {
            return cover.clone();
        };
        let mut faulted = cover.clone();
        match self {
            CoverFault::DropFirstFd => {
                faulted.remove(first.lhs, first.rhs);
            }
            CoverFault::AddBogusFd => {
                if let Some(extra) = (0..arity).find(|&a| a != first.rhs && !first.lhs.contains(a))
                {
                    faulted.add(first.lhs.with(extra), first.rhs);
                }
            }
        }
        faulted
    }
}

/// A fault-injection mode that attacks the engine itself while the
/// differential checks keep running (see the module docs). Injection
/// points are drawn from a ChaCha8 stream keyed on the trace seed, so a
/// `(trace, mode)` pair always injects at the same batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineFault {
    /// Before selected batches, first submit a *poisoned* variant (an
    /// unknown-record delete, an arity-mismatched insert, or a
    /// double-delete appended to the real ops). The engine must reject
    /// it with a typed [`DynFdError`](dynfd_core::DynFdError) rejection
    /// and leave the instance structurally identical to a pre-batch
    /// clone; the clean batch then applies normally.
    PoisonedBatches,
    /// Arm a [`FailAction::Panic`] failpoint at a seeded validation
    /// count before selected batches. If it trips, the error must be
    /// `PhasePanicked`, the instance must equal its pre-batch clone, and
    /// the retried batch must succeed — after which the ordinary oracle
    /// checks take over.
    MidBatchPanic,
    /// Arm a [`FailAction::DropCoverFd`] failpoint before selected
    /// batches and force [`ConsistencyLevel::Cheap`] on every replay
    /// config: the degraded-mode rebuild must repair the planted
    /// corruption before the oracles look (a surviving corruption fails
    /// the very next oracle comparison).
    CoverCorruption,
}

impl EngineFault {
    /// All modes, in the order the fuzz binary cycles through them.
    pub const ALL: [EngineFault; 3] = [
        EngineFault::PoisonedBatches,
        EngineFault::MidBatchPanic,
        EngineFault::CoverCorruption,
    ];

    /// The mode's name as used on the fuzz CLI and in reports.
    pub fn name(self) -> &'static str {
        match self {
            EngineFault::PoisonedBatches => "poisoned-batches",
            EngineFault::MidBatchPanic => "mid-batch-panic",
            EngineFault::CoverCorruption => "cover-corruption",
        }
    }

    /// Looks a mode up by its [`EngineFault::name`].
    pub fn by_name(name: &str) -> Option<EngineFault> {
        EngineFault::ALL.iter().copied().find(|m| m.name() == name)
    }
}

/// What the runner checks and under which configurations.
#[derive(Clone, Debug)]
pub struct RunnerOptions {
    /// Pruning configurations to replay under (default: the full §6.5
    /// ablation matrix crossed with the PLI-cache axis, 32
    /// configurations).
    pub configs: Vec<DynFdConfig>,
    /// Static oracles to compare against (default: all three).
    pub oracles: Vec<Oracle>,
    /// Whether to run the replay-based metamorphic checks (batch
    /// splitting, permutation, insert/delete round-trip). The
    /// cover-inversion round-trip is cheap and always on.
    pub metamorphic: bool,
    /// Optional injected cover fault (see [`CoverFault`]).
    pub fault: Option<CoverFault>,
    /// Optional engine fault-injection mode (see [`EngineFault`]).
    pub engine_fault: Option<EngineFault>,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            configs: DynFdConfig::ablation_matrix(),
            oracles: Oracle::ALL.to_vec(),
            metamorphic: true,
            fault: None,
            engine_fault: None,
        }
    }
}

impl RunnerOptions {
    /// A reduced-cost variant for shrinking: one config (the one that
    /// failed), all oracles, metamorphic checks on.
    pub fn focused(config: DynFdConfig, fault: Option<CoverFault>) -> Self {
        RunnerOptions {
            configs: vec![config],
            oracles: Oracle::ALL.to_vec(),
            metamorphic: true,
            fault,
            engine_fault: None,
        }
    }
}

/// Work counters for one fully-checked trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Configurations replayed.
    pub configs: usize,
    /// Batches applied across all primary replays.
    pub batches: usize,
    /// Static-oracle cover comparisons performed.
    pub oracle_checks: usize,
    /// Metamorphic invariant checks performed (all four kinds).
    pub metamorphic_checks: usize,
    /// Engine faults injected (poisoned batches submitted, failpoints
    /// armed).
    pub faults_injected: usize,
    /// Failed or rejected batches verified to have rolled back to a
    /// structurally identical pre-batch state.
    pub rollbacks_verified: usize,
    /// Degraded-mode cover rebuilds observed (from
    /// `BatchMetrics::cover_rebuilds`).
    pub cover_rebuilds: usize,
}

impl TraceStats {
    /// Accumulates another trace's counters.
    pub fn absorb(&mut self, other: &TraceStats) {
        self.configs += other.configs;
        self.batches += other.batches;
        self.oracle_checks += other.oracle_checks;
        self.metamorphic_checks += other.metamorphic_checks;
        self.faults_injected += other.faults_injected;
        self.rollbacks_verified += other.rollbacks_verified;
        self.cover_rebuilds += other.cover_rebuilds;
    }
}

/// A failed check, with enough context to report and reproduce it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceFailure {
    /// Check identifier, e.g. `oracle:tane`,
    /// `metamorphic:batch-splitting`, `consistency`.
    pub check: String,
    /// Strategy label of the configuration that failed.
    pub config: String,
    /// Batch index after which the check failed (`None` = bootstrap or
    /// end-of-trace check).
    pub batch: Option<usize>,
    /// Expected cover (or invariant side), rendered FDs.
    pub expected: Vec<String>,
    /// Actual cover, rendered FDs.
    pub actual: Vec<String>,
}

impl fmt::Display for TraceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} failed (config {}, batch {}): expected {:?}, got {:?}",
            self.check,
            self.config,
            self.batch.map_or("-".to_string(), |b| b.to_string()),
            self.expected,
            self.actual
        )
    }
}

fn render(tree: &FdTree) -> Vec<String> {
    tree.all_fds().iter().map(|fd| fd.to_string()).collect()
}

fn fail(
    check: impl Into<String>,
    config: &DynFdConfig,
    batch: Option<usize>,
    expected: &FdTree,
    actual: &FdTree,
) -> Box<TraceFailure> {
    Box::new(TraceFailure {
        check: check.into(),
        config: config.strategy_label(),
        batch,
        expected: render(expected),
        actual: render(actual),
    })
}

/// Replays `trace` under every configuration in `opts` and runs the
/// differential and metamorphic checks. Returns work counters on success
/// and the first failure otherwise.
pub fn check_trace(trace: &Trace, opts: &RunnerOptions) -> Result<TraceStats, Box<TraceFailure>> {
    if opts.engine_fault == Some(EngineFault::MidBatchPanic) {
        silence_injected_panics();
    }
    let mut stats = TraceStats::default();
    let ops = trace.to_change_ops();
    let batches = Batch::chunk(ops.clone(), trace.batch_size);
    let arity = trace.arity();

    for config in &opts.configs {
        stats.configs += 1;
        let mut config = *config;
        if opts.engine_fault == Some(EngineFault::CoverCorruption) {
            // The degraded-mode repair path only runs when a per-batch
            // consistency check is on; the cheap one suffices to detect
            // the planted antichain/inversion drift.
            config.consistency = ConsistencyLevel::Cheap;
        }
        let mut dynfd = DynFd::new(trace.to_relation(), config);
        // Injection points are a deterministic function of the trace
        // seed: the same trace injects at the same batches on replay.
        let mut frng = ChaCha8Rng::seed_from_u64(trace.seed ^ 0xFA01_7BAD);

        // Bootstrap check, then one check per batch.
        check_covers(&dynfd, &config, None, opts, arity, &mut stats)?;
        for (i, batch) in batches.iter().enumerate() {
            let result =
                apply_with_faults(&mut dynfd, &config, batch, i, opts, &mut frng, &mut stats)?;
            stats.cover_rebuilds += result.metrics.cover_rebuilds;
            stats.batches += 1;
            // Arena bookkeeping check: slot↔rid maps, the free-list
            // partition, the canonical dead-slot form, and rid-sorted
            // PLI clusters must survive every batch. Cheap at fuzz
            // sizes, and the only check that sees the *physical* layout
            // (slot-churn traces exist to hammer this).
            if let Err(e) = dynfd.relation().check_arena_invariants() {
                return Err(Box::new(TraceFailure {
                    check: format!("arena-invariants:{e}"),
                    config: config.strategy_label(),
                    batch: Some(i),
                    expected: Vec::new(),
                    actual: Vec::new(),
                }));
            }
            check_covers(&dynfd, &config, Some(i), opts, arity, &mut stats)?;
        }
        // An armed failpoint whose condition was never reached must not
        // leak into the metamorphic replays below.
        dynfd.disarm_failpoint();

        // Deep invariant check on the final state (exponential in arity,
        // fine at fuzzing sizes). Skipped under an injected cover fault:
        // the fault perturbs observations, not internal state.
        if opts.fault.is_none() {
            if let Err(e) = dynfd.verify_consistency() {
                return Err(Box::new(TraceFailure {
                    check: format!("consistency:{e}"),
                    config: config.strategy_label(),
                    batch: None,
                    expected: Vec::new(),
                    actual: render(dynfd.positive_cover()),
                }));
            }
        }

        if opts.metamorphic {
            metamorphic_checks(trace, &dynfd, &config, &ops, opts, &mut stats)?;
        }
    }
    Ok(stats)
}

/// Installs (once, process-wide) a panic hook that suppresses the
/// default backtrace printing for *injected failpoint* panics — they are
/// expected, caught at the engine's transactional boundary, and would
/// otherwise flood fuzz logs — while delegating every other panic to the
/// previous hook unchanged.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|s| s.starts_with("injected failpoint"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// One failure report for a violated fault-injection contract.
fn fault_failure(
    check: impl Into<String>,
    config: &DynFdConfig,
    batch: usize,
    detail: String,
) -> Box<TraceFailure> {
    Box::new(TraceFailure {
        check: check.into(),
        config: config.strategy_label(),
        batch: Some(batch),
        expected: Vec::new(),
        actual: vec![detail],
    })
}

/// Applies one batch, optionally preceded by an engine-fault injection
/// (see [`EngineFault`]); verifies the rejection/rollback contracts and
/// returns the clean application's result.
fn apply_with_faults(
    dynfd: &mut DynFd,
    config: &DynFdConfig,
    batch: &Batch,
    i: usize,
    opts: &RunnerOptions,
    frng: &mut ChaCha8Rng,
    stats: &mut TraceStats,
) -> Result<dynfd_core::BatchResult, Box<TraceFailure>> {
    use dynfd_core::DynFdError;

    let inject = opts.engine_fault.is_some() && frng.gen_bool(0.6);
    match opts.engine_fault {
        Some(EngineFault::PoisonedBatches) if inject => {
            stats.faults_injected += 1;
            let pre = dynfd.clone();
            let poisoned = poison_batch(batch, dynfd, frng);
            match dynfd.apply_batch(&poisoned) {
                Err(e) if e.is_rejection() => {}
                Err(e) => {
                    return Err(fault_failure(
                        "fault:poison-wrong-error",
                        config,
                        i,
                        e.to_string(),
                    ))
                }
                Ok(_) => {
                    return Err(fault_failure(
                        "fault:poison-accepted",
                        config,
                        i,
                        "poisoned batch applied without error".into(),
                    ))
                }
            }
            if let Some(divergence) = dynfd.state_divergence(&pre) {
                return Err(fault_failure(
                    "fault:poison-rollback",
                    config,
                    i,
                    divergence,
                ));
            }
            stats.rollbacks_verified += 1;
        }
        Some(EngineFault::MidBatchPanic) if inject => {
            stats.faults_injected += 1;
            let pre = dynfd.clone();
            let phase = if frng.gen_bool(0.5) {
                FailPhase::DeletePhase
            } else {
                FailPhase::InsertPhase
            };
            dynfd.arm_failpoint(FailPoint {
                phase,
                after_validations: frng.gen_range(0usize..6),
                action: FailAction::Panic,
            });
            match dynfd.apply_batch(batch) {
                Ok(result) => {
                    // The seeded point lay beyond the phase's validation
                    // count — the failpoint never tripped and the batch
                    // applied cleanly on the first try.
                    dynfd.disarm_failpoint();
                    return Ok(result);
                }
                Err(DynFdError::PhasePanicked { .. }) => {
                    if let Some(divergence) = dynfd.state_divergence(&pre) {
                        return Err(fault_failure("fault:panic-rollback", config, i, divergence));
                    }
                    stats.rollbacks_verified += 1;
                    // Fall through: the retry below must succeed.
                }
                Err(e) => {
                    return Err(fault_failure(
                        "fault:panic-wrong-error",
                        config,
                        i,
                        e.to_string(),
                    ))
                }
            }
        }
        Some(EngineFault::CoverCorruption) if inject => {
            stats.faults_injected += 1;
            let phase = if frng.gen_bool(0.5) {
                FailPhase::DeletePhase
            } else {
                FailPhase::InsertPhase
            };
            dynfd.arm_failpoint(FailPoint {
                phase,
                after_validations: 0,
                action: FailAction::DropCoverFd,
            });
            // The corruption (if the phase runs) is detected and repaired
            // inside apply_batch by the per-batch consistency check; the
            // oracle comparison right after the apply catches anything
            // that slips through.
        }
        _ => {}
    }

    let result = dynfd.apply_batch(batch).map_err(|e| {
        Box::new(TraceFailure {
            check: format!("apply:{e}"),
            config: config.strategy_label(),
            batch: Some(i),
            expected: Vec::new(),
            actual: Vec::new(),
        })
    })?;
    // A CoverCorruption failpoint targeting a phase this batch never ran
    // stays armed; drop it so it cannot fire at an unchecked moment.
    dynfd.disarm_failpoint();
    Ok(result)
}

/// Builds a copy of `batch` with one invalid op appended — an
/// unknown-record delete, an arity-mismatched insert, or a duplicate
/// delete of a live record already deleted by the same batch.
fn poison_batch(batch: &Batch, dynfd: &DynFd, frng: &mut ChaCha8Rng) -> Batch {
    let mut ops = batch.ops().to_vec();
    let arity = dynfd.relation().arity();
    // Past every id this batch's own inserts could create — a delete of
    // an id the batch itself assigns would be a *legal* deferred delete.
    let unknown = dynfd_common::RecordId(
        dynfd.relation().next_id().0 + batch.len() as u64 + 1 + frng.gen_range(0u64..1000),
    );
    match frng.gen_range(0u32..3) {
        0 => ops.push(ChangeOp::Delete(unknown)),
        1 => ops.push(ChangeOp::Insert(vec!["x".to_string(); arity + 1])),
        _ => match dynfd.relation().record_ids().next() {
            Some(rid) => {
                ops.push(ChangeOp::Delete(rid));
                ops.push(ChangeOp::Delete(rid));
            }
            // Empty relation: fall back to an unknown-record delete.
            None => ops.push(ChangeOp::Delete(unknown)),
        },
    }
    Batch::from_ops(ops)
}

/// The per-state checks: oracle comparisons plus the cover-inversion
/// round-trip (metamorphic invariant 1).
fn check_covers(
    dynfd: &DynFd,
    config: &DynFdConfig,
    batch: Option<usize>,
    opts: &RunnerOptions,
    arity: usize,
    stats: &mut TraceStats,
) -> Result<(), Box<TraceFailure>> {
    let observed = match opts.fault {
        Some(fault) => fault.apply(dynfd.positive_cover(), arity),
        None => dynfd.positive_cover().clone(),
    };

    for oracle in &opts.oracles {
        stats.oracle_checks += 1;
        let want = oracle.discover(dynfd.relation());
        if observed != want {
            return Err(fail(
                format!("oracle:{}", oracle.name()),
                config,
                batch,
                &want,
                &observed,
            ));
        }
    }

    // Invariant 1: positive ↔ negative cover inversion round-trip
    // (Algorithm 1 forward, classic dependency induction backward).
    stats.metamorphic_checks += 1;
    let inverted = invert_positive_cover(&observed, arity);
    if &inverted != dynfd.negative_cover() {
        return Err(fail(
            "metamorphic:inversion",
            config,
            batch,
            &inverted,
            dynfd.negative_cover(),
        ));
    }
    let induced = induce_from_negative_cover(&inverted, arity);
    if induced != observed {
        return Err(fail(
            "metamorphic:inversion-roundtrip",
            config,
            batch,
            &observed,
            &induced,
        ));
    }
    Ok(())
}

/// Metamorphic invariants 2–4 (replay-based).
fn metamorphic_checks(
    trace: &Trace,
    dynfd: &DynFd,
    config: &DynFdConfig,
    ops: &[dynfd_relation::ChangeOp],
    opts: &RunnerOptions,
    stats: &mut TraceStats,
) -> Result<(), Box<TraceFailure>> {
    let arity = trace.arity();
    let observe = |tree: &FdTree| match opts.fault {
        Some(fault) => fault.apply(tree, arity),
        None => tree.clone(),
    };
    let final_pos = observe(dynfd.positive_cover());
    let final_neg = dynfd.negative_cover();

    // Invariant 2: batch-splitting equivalence. The resolved op stream is
    // batching-invariant by construction, so any re-chunking must land on
    // the same covers.
    for split in [1, (trace.batch_size * 2).max(2)] {
        if split == trace.batch_size {
            continue;
        }
        stats.metamorphic_checks += 1;
        let mut alt = DynFd::new(trace.to_relation(), *config);
        for batch in Batch::chunk(ops.to_vec(), split) {
            alt.apply_batch(&batch).expect("re-chunked trace replays");
        }
        let alt_pos = observe(alt.positive_cover());
        if alt_pos != final_pos {
            return Err(fail(
                format!("metamorphic:batch-splitting(k={split})"),
                config,
                None,
                &final_pos,
                &alt_pos,
            ));
        }
        if alt.negative_cover() != final_neg {
            return Err(fail(
                format!("metamorphic:batch-splitting-negative(k={split})"),
                config,
                None,
                final_neg,
                alt.negative_cover(),
            ));
        }
    }

    // Invariant 3: row-permutation invariance. Covers are a function of
    // the row multiset; bootstrap a fresh instance over the final rows in
    // a different order.
    stats.metamorphic_checks += 1;
    let rel = dynfd.relation();
    let mut rows: Vec<Vec<String>> = rel
        .record_ids()
        .map(|rid| rel.materialize(rid).expect("live record materializes"))
        .collect();
    rows.reverse();
    let third = rows.len() / 3;
    if rows.len() > 2 {
        rows.rotate_left(third);
    }
    let permuted = DynamicRelation::from_rows(trace.schema.clone(), &rows)
        .expect("permuted rows match the schema");
    let fresh = observe(DynFd::new(permuted, *config).positive_cover());
    if fresh != final_pos {
        return Err(fail(
            "metamorphic:row-permutation",
            config,
            None,
            &final_pos,
            &fresh,
        ));
    }

    // Invariant 4: insert-then-delete round-trip identity.
    stats.metamorphic_checks += 1;
    let mut rt = dynfd.clone();
    let wave = trace.roundtrip_rows(4);
    let first_new = rt.relation().next_id();
    let mut insert_wave = Batch::new();
    for row in &wave {
        insert_wave.insert(row.clone());
    }
    rt.apply_batch(&insert_wave).expect("insert wave applies");
    let mut delete_wave = Batch::new();
    for k in 0..wave.len() as u64 {
        delete_wave.delete(dynfd_common::RecordId(first_new.0 + k));
    }
    rt.apply_batch(&delete_wave).expect("delete wave applies");
    let rt_pos = observe(rt.positive_cover());
    if rt_pos != final_pos {
        return Err(fail(
            "metamorphic:insert-delete-roundtrip",
            config,
            None,
            &final_pos,
            &rt_pos,
        ));
    }
    if rt.negative_cover() != final_neg {
        return Err(fail(
            "metamorphic:insert-delete-roundtrip-negative",
            config,
            None,
            final_neg,
            rt.negative_cover(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceProfile;

    #[test]
    fn clean_traces_pass_every_check() {
        let trace = Trace::generate(TraceProfile::Uniform, 42);
        let opts = RunnerOptions {
            configs: vec![DynFdConfig::default(), DynFdConfig::baseline()],
            ..RunnerOptions::default()
        };
        let stats = check_trace(&trace, &opts).expect("clean trace");
        assert_eq!(stats.configs, 2);
        assert!(stats.oracle_checks > 0);
        assert!(stats.metamorphic_checks > 0);
    }

    #[test]
    fn injected_drop_fault_is_caught() {
        let trace = Trace::generate(TraceProfile::AllDuplicates, 1);
        let opts = RunnerOptions {
            configs: vec![DynFdConfig::default()],
            fault: Some(CoverFault::DropFirstFd),
            ..RunnerOptions::default()
        };
        let failure = check_trace(&trace, &opts).expect_err("fault must be caught");
        assert!(
            failure.check.starts_with("oracle:") || failure.check.starts_with("metamorphic:"),
            "{}",
            failure.check
        );
    }

    #[test]
    fn injected_bogus_fd_fault_is_caught() {
        let trace = Trace::generate(TraceProfile::KeyHeavy, 2);
        let opts = RunnerOptions {
            configs: vec![DynFdConfig::default()],
            fault: Some(CoverFault::AddBogusFd),
            ..RunnerOptions::default()
        };
        check_trace(&trace, &opts).expect_err("fault must be caught");
    }

    #[test]
    fn poisoned_batches_are_rejected_and_rolled_back() {
        // Across profiles and seeds: every poisoned batch draws a typed
        // rejection, rolls back structurally, and the clean replay still
        // matches every oracle on every batch boundary.
        let mut totals = TraceStats::default();
        for (case, profile) in TraceProfile::ALL.into_iter().enumerate() {
            let trace = Trace::generate(profile, 100 + case as u64);
            let opts = RunnerOptions {
                configs: vec![DynFdConfig::default()],
                engine_fault: Some(EngineFault::PoisonedBatches),
                metamorphic: false,
                ..RunnerOptions::default()
            };
            let stats = check_trace(&trace, &opts).expect("poison mode must stay green");
            totals.absorb(&stats);
        }
        assert!(totals.faults_injected > 0, "no faults injected");
        assert_eq!(
            totals.rollbacks_verified, totals.faults_injected,
            "every poisoned batch verifies its rollback"
        );
    }

    #[test]
    fn mid_batch_panics_roll_back_and_retry_clean() {
        let mut totals = TraceStats::default();
        for (case, profile) in TraceProfile::ALL.into_iter().enumerate() {
            let trace = Trace::generate(profile, 200 + case as u64);
            let opts = RunnerOptions {
                configs: vec![DynFdConfig::default(), DynFdConfig::baseline()],
                engine_fault: Some(EngineFault::MidBatchPanic),
                metamorphic: false,
                ..RunnerOptions::default()
            };
            let stats = check_trace(&trace, &opts).expect("panic mode must stay green");
            totals.absorb(&stats);
        }
        assert!(totals.faults_injected > 0, "no failpoints armed");
        assert!(
            totals.rollbacks_verified > 0,
            "no failpoint ever tripped across {} armings",
            totals.faults_injected
        );
    }

    #[test]
    fn cover_corruption_is_repaired_before_the_oracles_look() {
        let mut totals = TraceStats::default();
        for (case, profile) in TraceProfile::ALL.into_iter().enumerate() {
            let trace = Trace::generate(profile, 300 + case as u64);
            let opts = RunnerOptions {
                configs: vec![DynFdConfig::default()],
                engine_fault: Some(EngineFault::CoverCorruption),
                metamorphic: false,
                ..RunnerOptions::default()
            };
            let stats = check_trace(&trace, &opts).expect("corruption mode must stay green");
            totals.absorb(&stats);
        }
        assert!(totals.faults_injected > 0, "no corruption planted");
        assert!(
            totals.cover_rebuilds > 0,
            "no degraded-mode rebuild across {} plantings",
            totals.faults_injected
        );
    }

    #[test]
    fn engine_fault_names_round_trip() {
        for mode in EngineFault::ALL {
            assert_eq!(EngineFault::by_name(mode.name()), Some(mode));
        }
        assert_eq!(EngineFault::by_name("nonsense"), None);
    }

    #[test]
    fn failure_reports_carry_context() {
        let trace = Trace::generate(TraceProfile::Uniform, 3);
        let opts = RunnerOptions {
            configs: vec![DynFdConfig::default()],
            fault: Some(CoverFault::DropFirstFd),
            ..RunnerOptions::default()
        };
        let failure = check_trace(&trace, &opts).unwrap_err();
        assert_eq!(failure.config, "4.3+5.3+4.2+5.2");
        assert_ne!(failure.expected, failure.actual);
        let rendered = failure.to_string();
        assert!(rendered.contains("failed"), "{rendered}");
    }
}
