//! Strategy trait and combinators.

use crate::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking — a
/// strategy is simply a deterministic function of the test RNG.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from
    /// it, and draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (up to an internal
    /// cap, then panics — mirrors upstream's rejection exhaustion).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let mut roll = rng.gen_range(0u64..self.total);
        for (w, strat) in &self.arms {
            if roll < *w as u64 {
                return strat.generate(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("weights sum covered the roll")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;

    #[test]
    fn ranges_maps_and_unions_compose() {
        let strat = crate::prop_oneof![
            2 => (0u8..10).prop_map(|v| v as usize),
            1 => Just(99usize),
        ];
        let mut rng = TestRng::new(1);
        let mut saw_mapped = false;
        let mut saw_just = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                v if v < 10 => saw_mapped = true,
                99 => saw_just = true,
                v => panic!("out-of-domain value {v}"),
            }
        }
        assert!(saw_mapped && saw_just);
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let exact = crate::collection::vec(0u8..5, 4usize);
        let ranged = crate::collection::vec(0u8..5, 1..4);
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            assert_eq!(exact.generate(&mut rng).len(), 4);
            let l = ranged.generate(&mut rng).len();
            assert!((1..4).contains(&l));
        }
    }

    #[test]
    fn flat_map_feeds_intermediate_value() {
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..3, n));
        let mut rng = TestRng::new(3);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
