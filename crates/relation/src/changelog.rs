//! Change-log ingestion and auto-batching.
//!
//! The paper's input is "a stream [of changes] that is first transformed
//! and then processed in batches ... e.g., equally sized groups of
//! change operations or, alternatively, all operations from within a
//! tumbling time window" (Section 2). This module provides both sides:
//!
//! * [`parse_changelog`] — a line-oriented text format for externally
//!   recorded change histories (the role the paper's extracted
//!   MusicBrainz/Wikipedia/TSA histories play);
//! * [`Batcher`] — count-based auto-batching of a change stream;
//! * [`WindowBatcher`] — tumbling windows over timestamped operations.
//!
//! ## Change-log format
//!
//! One operation per line, fields separated by `|` (values may contain
//! commas; a literal `|` in a value is escaped as `\|`, a literal `\`
//! as `\\`):
//!
//! ```text
//! # comment
//! I|Max|Jones|14482|Potsdam       insert a row
//! D|3                             delete record id 3
//! U|7|Max|Miller|10115|Berlin     update record id 7 to the new row
//! ```

use crate::batch::{Batch, ChangeOp};
use dynfd_common::{DynError, RecordId, Result};

/// Parses a change log in the format documented at module level.
///
/// `arity` is the relation's column count; every insert/update row is
/// checked against it up front so malformed logs fail before anything
/// is applied.
pub fn parse_changelog(text: &str, arity: usize) -> Result<Vec<ChangeOp>> {
    let mut ops = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        // Values may carry significant leading/trailing whitespace, so
        // only a trailing CR (CRLF logs) is stripped; comment/blank
        // detection works on a trimmed view.
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        let probe = line.trim();
        if probe.is_empty() || probe.starts_with('#') {
            continue;
        }
        let fields = split_fields(line, line_no + 1)?;
        let op = match fields[0].as_str() {
            "I" => {
                let row = fields[1..].to_vec();
                check_arity(&row, arity, line_no + 1)?;
                ChangeOp::Insert(row)
            }
            "D" => {
                if fields.len() != 2 {
                    return Err(DynError::Parse(format!(
                        "line {}: D takes exactly one record id",
                        line_no + 1
                    )));
                }
                ChangeOp::Delete(parse_rid(&fields[1], line_no + 1)?)
            }
            "U" => {
                if fields.len() < 2 {
                    return Err(DynError::Parse(format!(
                        "line {}: U needs a record id and a row",
                        line_no + 1
                    )));
                }
                let rid = parse_rid(&fields[1], line_no + 1)?;
                let row = fields[2..].to_vec();
                check_arity(&row, arity, line_no + 1)?;
                ChangeOp::Update(rid, row)
            }
            other => {
                return Err(DynError::Parse(format!(
                    "line {}: unknown op code {other:?} (expected I, D, or U)",
                    line_no + 1
                )))
            }
        };
        ops.push(op);
    }
    Ok(ops)
}

/// Serializes operations back into the change-log format (inverse of
/// [`parse_changelog`]).
pub fn write_changelog(ops: &[ChangeOp]) -> String {
    let mut out = String::new();
    let esc = |v: &str| v.replace('\\', "\\\\").replace('|', "\\|");
    for op in ops {
        match op {
            ChangeOp::Insert(row) => {
                out.push('I');
                for v in row {
                    out.push('|');
                    out.push_str(&esc(v));
                }
            }
            ChangeOp::Delete(rid) => {
                out.push_str(&format!("D|{}", rid.raw()));
            }
            ChangeOp::Update(rid, row) => {
                out.push_str(&format!("U|{}", rid.raw()));
                for v in row {
                    out.push('|');
                    out.push_str(&esc(v));
                }
            }
        }
        out.push('\n');
    }
    out
}

fn split_fields(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = vec![String::new()];
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some(e @ ('|' | '\\')) => fields.last_mut().expect("non-empty").push(e),
                _ => {
                    return Err(DynError::Parse(format!(
                        "line {line_no}: dangling escape character"
                    )))
                }
            },
            '|' => fields.push(String::new()),
            _ => fields.last_mut().expect("non-empty").push(c),
        }
    }
    Ok(fields)
}

fn parse_rid(text: &str, line_no: usize) -> Result<RecordId> {
    text.trim()
        .parse::<u64>()
        .map(RecordId)
        .map_err(|_| DynError::Parse(format!("line {line_no}: bad record id {text:?}")))
}

fn check_arity(row: &[String], arity: usize, line_no: usize) -> Result<()> {
    if row.len() == arity {
        Ok(())
    } else {
        Err(DynError::Parse(format!(
            "line {line_no}: row has {} values, schema has {arity}",
            row.len()
        )))
    }
}

/// Count-based auto-batching: groups a change stream into batches of a
/// fixed capacity, the batching mode used throughout the paper's
/// evaluation. Push operations in; a full [`Batch`] pops out every
/// `capacity` ops; call [`Batcher::flush`] at stream end.
#[derive(Clone, Debug)]
pub struct Batcher {
    capacity: usize,
    pending: Vec<ChangeOp>,
}

impl Batcher {
    /// Creates a batcher emitting batches of `capacity` operations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        Batcher {
            capacity,
            pending: Vec::with_capacity(capacity),
        }
    }

    /// Adds one operation; returns a full batch when the capacity is
    /// reached.
    pub fn push(&mut self, op: ChangeOp) -> Option<Batch> {
        self.pending.push(op);
        if self.pending.len() == self.capacity {
            Some(Batch::from_ops(std::mem::take(&mut self.pending)))
        } else {
            None
        }
    }

    /// Emits whatever is pending as a final (possibly smaller) batch.
    pub fn flush(&mut self) -> Option<Batch> {
        if self.pending.is_empty() {
            None
        } else {
            Some(Batch::from_ops(std::mem::take(&mut self.pending)))
        }
    }

    /// Operations currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

/// Tumbling-window auto-batching over *timestamped* operations: all
/// operations whose timestamp falls into the same `[k·width, (k+1)·width)`
/// window form one batch — the paper's alternative batching mode.
/// Timestamps must be non-decreasing (a change log is ordered).
#[derive(Clone, Debug)]
pub struct WindowBatcher {
    width: u64,
    current_window: Option<u64>,
    pending: Vec<ChangeOp>,
}

impl WindowBatcher {
    /// Creates a batcher with tumbling windows of `width` time units.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "window width must be positive");
        WindowBatcher {
            width,
            current_window: None,
            pending: Vec::new(),
        }
    }

    /// Adds an operation stamped `timestamp`; returns the previous
    /// window's batch when the operation opens a new window.
    ///
    /// # Panics
    ///
    /// Panics if timestamps go backwards across emitted windows.
    pub fn push(&mut self, timestamp: u64, op: ChangeOp) -> Option<Batch> {
        let window = timestamp / self.width;
        let emitted = match self.current_window {
            Some(w) if window < w => panic!("timestamps must be non-decreasing"),
            Some(w) if window > w && !self.pending.is_empty() => {
                Some(Batch::from_ops(std::mem::take(&mut self.pending)))
            }
            _ => None,
        };
        self.current_window = Some(window);
        self.pending.push(op);
        emitted
    }

    /// Emits the final window's batch.
    pub fn flush(&mut self) -> Option<Batch> {
        if self.pending.is_empty() {
            None
        } else {
            Some(Batch::from_ops(std::mem::take(&mut self.pending)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let ops = vec![
            ChangeOp::Insert(vec!["Max".into(), "Jones".into()]),
            ChangeOp::Delete(RecordId(3)),
            ChangeOp::Update(RecordId(7), vec!["Max".into(), "Miller".into()]),
        ];
        let text = write_changelog(&ops);
        assert_eq!(parse_changelog(&text, 2).unwrap(), ops);
    }

    #[test]
    fn escapes_in_values() {
        let ops = vec![ChangeOp::Insert(vec!["a|b".into(), "c\\d".into()])];
        let text = write_changelog(&ops);
        assert_eq!(text, "I|a\\|b|c\\\\d\n");
        assert_eq!(parse_changelog(&text, 2).unwrap(), ops);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# history\n\nI|x|y\n  \nD|0\n";
        let ops = parse_changelog(text, 2).unwrap();
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_changelog("X|a|b\n", 2).is_err(), "unknown op");
        assert!(parse_changelog("I|only-one\n", 2).is_err(), "arity");
        assert!(parse_changelog("D|notanumber\n", 2).is_err(), "bad id");
        assert!(parse_changelog("D|1|2\n", 2).is_err(), "extra field");
        assert!(parse_changelog("U|5\n", 2).is_err(), "missing row");
        assert!(parse_changelog("I|a|b\\\n", 2).is_err(), "dangling escape");
    }

    #[test]
    fn count_batcher() {
        let mut b = Batcher::new(3);
        assert!(b.push(ChangeOp::Delete(RecordId(0))).is_none());
        assert!(b.push(ChangeOp::Delete(RecordId(1))).is_none());
        let full = b.push(ChangeOp::Delete(RecordId(2))).expect("full batch");
        assert_eq!(full.len(), 3);
        assert_eq!(b.pending(), 0);
        b.push(ChangeOp::Delete(RecordId(3)));
        let rest = b.flush().expect("remainder");
        assert_eq!(rest.len(), 1);
        assert!(b.flush().is_none());
    }

    #[test]
    fn window_batcher_tumbles() {
        let mut b = WindowBatcher::new(10);
        assert!(b.push(1, ChangeOp::Delete(RecordId(0))).is_none());
        assert!(b.push(9, ChangeOp::Delete(RecordId(1))).is_none());
        // t=10 opens window 1 → window 0's batch pops out.
        let w0 = b.push(10, ChangeOp::Delete(RecordId(2))).expect("window 0");
        assert_eq!(w0.len(), 2);
        // Skipping windows entirely is fine.
        let w1 = b.push(35, ChangeOp::Delete(RecordId(3))).expect("window 1");
        assert_eq!(w1.len(), 1);
        let tail = b.flush().expect("window 3");
        assert_eq!(tail.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn window_batcher_rejects_time_travel() {
        let mut b = WindowBatcher::new(10);
        b.push(25, ChangeOp::Delete(RecordId(0)));
        b.push(3, ChangeOp::Delete(RecordId(1)));
    }
}
