//! The strongest end-to-end correctness check available without the
//! original authors' code: after every batch, DynFD's maintained
//! positive cover must be identical to what each of the three static
//! algorithms discovers from scratch on the materialized relation —
//! under every pruning configuration.
//!
//! Since the testkit landed, this suite drives `dynfd-testkit`'s
//! differential runner instead of a private trace generator: every test
//! below gets the full oracle sweep (TANE, FDEP, HyFD after every
//! batch), the four metamorphic invariants, and the end-of-trace deep
//! consistency check for free. Failing traces can be handed straight to
//! `dynfd_testkit::shrink_trace` for minimization.

use dynfd::core::DynFdConfig;
use dynfd_testkit::{check_trace, RunnerOptions, Trace, TraceOp, TraceProfile};

/// Runs the full differential + metamorphic battery and panics with the
/// failure report on any discrepancy.
fn check(trace: &Trace, opts: &RunnerOptions) {
    if let Err(failure) = check_trace(trace, opts) {
        panic!("seed {} ({}): {failure}", trace.seed, trace.profile);
    }
}

#[test]
fn every_config_tracks_static_discovery_small() {
    // One trace per data shape, each replayed under all 128
    // configurations (the §6.5 ablation matrix crossed with the
    // PLI-cache, SIMD-kernel, and sampling-ordering axes).
    let opts = RunnerOptions::default();
    assert_eq!(opts.configs.len(), 128, "ablation matrix is the default");
    for profile in [TraceProfile::Uniform, TraceProfile::KeyHeavy] {
        check(&Trace::generate(profile, 1), &opts);
    }
}

#[test]
fn default_config_many_seeds() {
    let opts = RunnerOptions::focused(DynFdConfig::default(), None);
    for seed in 0..8 {
        for profile in TraceProfile::ALL {
            check(&Trace::generate(profile, seed), &opts);
        }
    }
}

#[test]
fn baseline_config_many_seeds() {
    let opts = RunnerOptions::focused(DynFdConfig::baseline(), None);
    for seed in 100..106 {
        for profile in [
            TraceProfile::Uniform,
            TraceProfile::ZipfSkewed,
            TraceProfile::NullHeavy,
        ] {
            check(&Trace::generate(profile, seed), &opts);
        }
    }
}

#[test]
fn wider_relations_fewer_seeds() {
    // The generator makes ~20 % of traces wide (9–12 columns); scan a
    // deterministic seed range and take the first few wide ones.
    let opts = RunnerOptions::focused(DynFdConfig::default(), None);
    let mut wide = 0;
    for seed in 200..300 {
        let trace = Trace::generate(TraceProfile::Uniform, seed);
        if trace.arity() >= 9 {
            check(&trace, &opts);
            wide += 1;
            if wide == 2 {
                return;
            }
        }
    }
    panic!("no wide traces in the scanned seed range");
}

#[test]
fn large_batches_rewrite_most_of_the_relation() {
    // Batches bigger than the relation stress the churn paths: take
    // normal traces and replay the whole script as one batch.
    let opts = RunnerOptions::focused(DynFdConfig::default(), None);
    for seed in 300..304 {
        let mut trace = Trace::generate(TraceProfile::AllDuplicates, seed);
        trace.batch_size = trace.ops.len().max(1);
        check(&trace, &opts);
    }
}

#[test]
fn delete_heavy_streams() {
    // Seed a large relation and drain most of it — a hand-built trace
    // showing the testkit accepts manual scripts, not just generated
    // ones.
    let base = Trace::generate(TraceProfile::ZipfSkewed, 777);
    let trace = Trace {
        seed: 0,
        profile: "manual".to_string(),
        schema: base.schema.clone(),
        initial_rows: base.initial_rows.clone(),
        // DeleteNth indexes the live list modulo its length, so a long
        // run of deletes drains the relation from varying positions.
        ops: (0..base.initial_rows.len().saturating_sub(3))
            .map(|i| TraceOp::DeleteNth(i * 7))
            .collect(),
        batch_size: 6,
    };
    for config in [DynFdConfig::default(), DynFdConfig::baseline()] {
        check(&trace, &RunnerOptions::focused(config, None));
    }
}
