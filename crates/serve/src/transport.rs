//! The socket transport: many concurrent framed connections feeding
//! one [`ServeEngine`].
//!
//! [`serve_listener`] binds a TCP or unix-domain socket and runs an
//! accept loop; every connection gets its own supervision thread pair:
//!
//! * a **read thread** running the same
//!   [`Dispatcher`](crate::session) loop as the stdin transport
//!   (shared protocol, shared guards) with the socket's read deadline
//!   armed to [`TransportConfig::tick`] so the stop flag and the idle
//!   budget are polled even on a silent peer;
//! * a **writer thread** draining a bounded outbox. Worker completions
//!   `try_send` into the outbox and *never block*: a client that stops
//!   reading long enough for its outbox to fill is doomed — the writer
//!   sends one final code-21 (`SlowClient`) frame best-effort and the
//!   socket is closed. A write-deadline miss dooms the connection the
//!   same way.
//!
//! Per-tenant apply order is preserved across connections because every
//! connection submits into the same FNV-sharded worker pool — a
//! tenant's batches land in its one shard FIFO in arrival order no
//! matter which socket carried them.
//!
//! Graceful drain: when `stop` reports true (SIGINT) or any client
//! sends `Shutdown`, the accept loop closes, every live connection
//! gets a typed `ShuttingDown` notice (code 16) and is unwound, and
//! stragglers are force-closed at [`TransportConfig::drain_deadline`].
//! The caller then drains + fsyncs the engine itself
//! ([`ServeEngine::shutdown`]) — socket teardown first, durability
//! second, so every admitted batch's completion has settled (each read
//! thread quiesces the engine before it exits).
//!
//! Session resume (`Hello` + `session_seq`, see `crate::resume`) rides
//! on top: the registry is shared across connections, so a client
//! reconnecting after a drop re-sends its unacked frames and the server
//! deduplicates — batches apply exactly once even through reconnect
//! storms.

use crate::resume::SessionRegistry;
use crate::session::{drive_connection, ConnOptions, Dispatcher, ResponseSink};
use crate::wire::{self, Response};
use crate::{ServeEngine, CODE_SLOW_CLIENT};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Where the transport listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP host:port, e.g. `127.0.0.1:7333`.
    Tcp(String),
    /// A unix-domain socket path.
    Unix(PathBuf),
}

impl ListenAddr {
    /// `unix:<path>` or anything containing a `/` is a unix socket
    /// path; everything else is a TCP `host:port`.
    pub fn parse(s: &str) -> ListenAddr {
        if let Some(path) = s.strip_prefix("unix:") {
            ListenAddr::Unix(PathBuf::from(path))
        } else if s.contains('/') {
            ListenAddr::Unix(PathBuf::from(s))
        } else {
            ListenAddr::Tcp(s.to_string())
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(hp) => write!(f, "tcp {hp}"),
            ListenAddr::Unix(p) => write!(f, "unix {}", p.display()),
        }
    }
}

/// One accepted connection's stream, TCP or unix.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    /// Client-side dial of a listen address.
    pub(crate) fn connect(addr: &ListenAddr) -> io::Result<Stream> {
        match addr {
            ListenAddr::Tcp(hp) => TcpStream::connect(hp.as_str()).map(|s| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            ListenAddr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
        }
    }

    pub(crate) fn set_client_timeouts(&self, read: Duration, write: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(read))?;
        self.set_write_timeout(Some(write))
    }

    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(t),
            Stream::Unix(s) => s.set_write_timeout(t),
        }
    }

    pub(crate) fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn bind(addr: &ListenAddr) -> io::Result<Listener> {
        match addr {
            ListenAddr::Tcp(hp) => TcpListener::bind(hp.as_str()).map(Listener::Tcp),
            ListenAddr::Unix(path) => {
                // A stale socket file from a dead process blocks bind.
                let _ = std::fs::remove_file(path);
                UnixListener::bind(path).map(Listener::Unix)
            }
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(on),
            Listener::Unix(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Knobs of the socket transport.
#[derive(Clone)]
pub struct TransportConfig {
    /// Per-connection guards (frame bound, idle budget) and the shared
    /// session registry. When [`ConnOptions::sessions`] is `None` the
    /// transport creates a registry itself — socket clients always get
    /// resume.
    pub options: ConnOptions,
    /// Bounded outbox depth per connection; overflow sheds the client
    /// (code 21).
    pub outbox: usize,
    /// Read-deadline tick: how often a silent connection polls the stop
    /// flag and idle budget.
    pub tick: Duration,
    /// Write deadline per response frame; a miss dooms the connection.
    pub write_timeout: Duration,
    /// Hard deadline for unwinding live connections at drain; past it,
    /// sockets are force-closed.
    pub drain_deadline: Duration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            options: ConnOptions::default(),
            outbox: 256,
            tick: Duration::from_millis(25),
            write_timeout: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// What one [`serve_listener`] run served, totalled at drain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransportReport {
    /// Connections accepted.
    pub connections: u64,
    /// Frames read across all connections.
    pub frames: u64,
    /// Response frames actually written to sockets.
    pub responses: u64,
    /// Connections doomed for reading too slowly (outbox overflow or
    /// write-deadline miss).
    pub slow_client_sheds: u64,
    /// Connections killed by the idle budget.
    pub idle_kills: u64,
    /// Distinct client sessions seen.
    pub sessions: u64,
    /// Session re-attaches (reconnects that resumed a session).
    pub sessions_resumed: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    frames: AtomicU64,
    responses: AtomicU64,
    sheds: AtomicU64,
    idle_kills: AtomicU64,
}

/// The bounded per-connection outbox. Senders (worker completions, the
/// read loop) never block: overflow or a closed channel drops the
/// response and, for overflow, dooms the connection.
struct Outbox {
    tx: Mutex<Option<mpsc::SyncSender<Vec<u8>>>>,
    doomed: Arc<AtomicBool>,
    capacity: usize,
    sent: AtomicU64,
    overflowed: AtomicBool,
}

impl Outbox {
    /// Drops the sender so the writer thread drains and exits once
    /// every queued frame is out.
    fn close(&self) {
        self.tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
    }
}

impl ResponseSink for Outbox {
    fn send(&self, resp: &Response) {
        if self.doomed.load(Ordering::SeqCst) {
            return;
        }
        let guard = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(tx) = guard.as_ref() else { return };
        match tx.try_send(wire::encode_response(resp)) {
            Ok(()) => {
                self.sent.fetch_add(1, Ordering::SeqCst);
            }
            Err(mpsc::TrySendError::Full(_)) => {
                // Slow client: shed. The writer thread notices `doomed`,
                // sends the final code-21 frame, and closes the socket;
                // this caller (a worker completion) moves on unblocked.
                self.overflowed.store(true, Ordering::SeqCst);
                self.doomed.store(true, Ordering::SeqCst);
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {}
        }
    }
}

fn writer_loop(
    rx: mpsc::Receiver<Vec<u8>>,
    mut stream: Stream,
    doomed: Arc<AtomicBool>,
    outbox: Arc<Outbox>,
    counters: Arc<Counters>,
) {
    let mut io = wire::FrameIo::new(&mut stream);
    loop {
        if doomed.load(Ordering::SeqCst) {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(frame) => {
                if io.write(&frame).is_err() {
                    // Write failed or timed out: the client is dead or
                    // wedged. Doom the connection; never retry into it.
                    doomed.store(true, Ordering::SeqCst);
                    break;
                }
                counters.responses.fetch_add(1, Ordering::SeqCst);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    if outbox.overflowed.load(Ordering::SeqCst) {
        // Best-effort goodbye so a live-but-slow client learns *why*.
        let shed = crate::ServeError::SlowClient {
            capacity: outbox.capacity,
        };
        let resp = Response::error(
            0,
            "",
            CODE_SLOW_CLIENT.min(u8::MAX as u32) as u8,
            shed.to_string(),
        );
        if io.write(&wire::encode_response(&resp)).is_ok() {
            counters.responses.fetch_add(1, Ordering::SeqCst);
        }
        counters.sheds.fetch_add(1, Ordering::SeqCst);
    }
    stream.shutdown();
}

fn handle_connection(
    engine: Arc<ServeEngine>,
    stream: Stream,
    options: ConnOptions,
    config: &TransportConfig,
    stopping: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    if stream.set_read_timeout(Some(config.tick)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        return;
    }
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let doomed = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(config.outbox.max(1));
    let outbox = Arc::new(Outbox {
        tx: Mutex::new(Some(tx)),
        doomed: Arc::clone(&doomed),
        capacity: config.outbox.max(1),
        sent: AtomicU64::new(0),
        overflowed: AtomicBool::new(false),
    });
    let writer = {
        let doomed = Arc::clone(&doomed);
        let outbox = Arc::clone(&outbox);
        let counters = Arc::clone(&counters);
        std::thread::Builder::new()
            .name("dynfd-conn-writer".into())
            .spawn(move || writer_loop(rx, write_half, doomed, outbox, counters))
    };
    let Ok(writer) = writer else { return };
    let sink: Arc<dyn ResponseSink> = Arc::clone(&outbox) as Arc<dyn ResponseSink>;
    let mut dispatcher = Dispatcher::new(
        Arc::clone(&engine),
        options.sessions.clone(),
        Arc::clone(&sink),
    );
    let outcome = {
        let stopping = Arc::clone(&stopping);
        let doomed = Arc::clone(&doomed);
        drive_connection(stream, &sink, &mut dispatcher, &options, move || {
            stopping.load(Ordering::SeqCst) || doomed.load(Ordering::SeqCst)
        })
    };
    counters.frames.fetch_add(outcome.frames, Ordering::SeqCst);
    if outcome.idle_killed {
        counters.idle_kills.fetch_add(1, Ordering::SeqCst);
    }
    if outcome.shutdown_requested {
        // A client Shutdown frame drains the whole transport.
        stopping.store(true, Ordering::SeqCst);
    }
    // Teardown order matters: quiesce so every admitted batch's
    // completion has settled (and reached this outbox if the session is
    // still attached here), then detach, then close the outbox so the
    // writer drains the backlog and exits. A paused engine never goes
    // idle (crash-harness runs queue work only the shutdown drain
    // delivers), so skip the wait there.
    if !engine.is_paused() {
        engine.quiesce();
    }
    dispatcher.detach();
    outbox.close();
    let _ = writer.join();
}

/// Binds `addr` and serves connections until `stop` reports true or a
/// client sends `Shutdown`; then unwinds every connection (typed
/// `ShuttingDown` notices, hard deadline) and returns the totals.
/// The engine itself keeps running — callers drain + fsync it next
/// ([`ServeEngine::shutdown`]).
pub fn serve_listener(
    engine: &Arc<ServeEngine>,
    addr: &ListenAddr,
    mut config: TransportConfig,
    stop: impl Fn() -> bool,
) -> io::Result<TransportReport> {
    if config.options.sessions.is_none() {
        config.options.sessions = Some(Arc::new(SessionRegistry::default()));
    }
    let registry = config
        .options
        .sessions
        .clone()
        .unwrap_or_else(|| Arc::new(SessionRegistry::default()));
    let listener = Listener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let stopping = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Counters::default());
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if stop() || stopping.load(Ordering::SeqCst) {
            stopping.store(true, Ordering::SeqCst);
            break;
        }
        match listener.accept() {
            Ok(stream) => {
                counters.connections.fetch_add(1, Ordering::SeqCst);
                let engine = Arc::clone(engine);
                let options = config.options.clone();
                let config = config.clone();
                let stopping = Arc::clone(&stopping);
                let conn_counters = Arc::clone(&counters);
                let spawned =
                    std::thread::Builder::new()
                        .name("dynfd-conn".into())
                        .spawn(move || {
                            handle_connection(
                                engine,
                                stream,
                                options,
                                &config,
                                stopping,
                                conn_counters,
                            )
                        });
                match spawned {
                    Ok(handle) => workers.push(handle),
                    Err(_) => {
                        // Thread exhaustion: shed the connection (drop
                        // closes the socket) rather than die.
                        counters.connections.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                // Reap finished connections so a long-lived listener
                // does not accumulate handles.
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(config.tick.min(Duration::from_millis(25)));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient accept failure (per-connection resource
                // limits): back off briefly, keep serving.
                std::thread::sleep(config.tick);
            }
        }
    }
    // Drain: connections observe `stopping` within one tick, notify
    // their client, quiesce, and unwind. Past the hard deadline they
    // are abandoned (their threads exit once the process's engine
    // quiesces; the sockets die with the process or the next write).
    let deadline = Instant::now() + config.drain_deadline;
    for handle in workers {
        let mut remaining = deadline.saturating_duration_since(Instant::now());
        while !handle.is_finished() && !remaining.is_zero() {
            std::thread::sleep(Duration::from_millis(5).min(remaining));
            remaining = deadline.saturating_duration_since(Instant::now());
        }
        if handle.is_finished() {
            let _ = handle.join();
        }
    }
    if let ListenAddr::Unix(path) = addr {
        let _ = std::fs::remove_file(path);
    }
    Ok(TransportReport {
        connections: counters.connections.load(Ordering::SeqCst),
        frames: counters.frames.load(Ordering::SeqCst),
        responses: counters.responses.load(Ordering::SeqCst),
        slow_client_sheds: counters.sheds.load(Ordering::SeqCst),
        idle_kills: counters.idle_kills.load(Ordering::SeqCst),
        sessions: registry.len() as u64,
        sessions_resumed: registry.resumed(),
    })
}
