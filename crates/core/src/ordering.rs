//! Sampling-guided validation ordering for the insert phase.
//!
//! The unordered insert phase (Algorithm 2) validates every candidate of
//! a lattice level and only *then* applies the discovered violation
//! witnesses. But witnesses compose: one violating pair's agree set
//! refutes every candidate `X -> r` with `X ⊆ agree ∧ r ∉ agree`, and
//! the level's witness-application fold (`process_inserts`) already
//! skips candidates an earlier witness evicted. The fold just learns
//! about the witnesses too late to save any validation work.
//!
//! This module reorders the level so the fold's knowledge arrives
//! early, **without changing a single observable output**:
//!
//! 1. **Probe**: every job is probed against a small deterministic
//!    sample of *dirty* PLI clusters (clusters holding at least one
//!    newly inserted record — only those can hide a new violation),
//!    found through the batch's inserted slots so the sample stays on
//!    the dirt at any relation scale.
//!    A probe that finds a genuine violating pair proves the job
//!    invalid; the score counts how many it found.
//! 2. **Wave 1**: flagged jobs (score > 0, i.e. *certainly* invalid)
//!    validate first, ordered by descending score.
//! 3. **Resolved-prefix scan**: the fold over the level's violation
//!    entries is simulated exactly — but only across the contiguous
//!    *resolved* job-index prefix (every job validated or proven
//!    skippable). Agree sets applied inside that prefix are certain;
//!    beyond it the applied set is frozen, because an unvalidated job
//!    in between could contribute a witness that suppresses a later
//!    application. A remaining job is **skipped** outright when every
//!    one of its candidates is refuted by a certainly-applied agree
//!    set — the real fold would `continue` past each of its entries —
//!    *and* its cache effects can be reproduced without validating
//!    (see below).
//! 4. **Wave 2**: still-unresolved jobs validate in ascending index
//!    order in small chunks; each chunk extends the resolved prefix,
//!    which re-arms the scan. When a scan resolves everything that is
//!    left, the level terminates early — induction specialized the
//!    rest away. If the applied log instead grows deep without ever
//!    refuting a whole job, the scheduler stops simulating and
//!    validates the rest in one batch — that level's agree sets were
//!    too diverse for skipping to converge, and simulating the fold
//!    costs one agree-set materialization per surviving violation.
//!
//! Why outputs cannot change (`DESIGN.md` §6i has the full argument):
//!
//! * A probe hit is a genuine violating pair in the frozen relation, so
//!   a flagged job's verdict is already decided; validation order never
//!   affects verdicts because the relation is frozen for the level.
//! * Within a level, a candidate is evicted by the fold **iff** an
//!   applied agree set refutes it (specialization only inserts at
//!   deeper levels, and shallower levels hold only genuinely valid
//!   FDs, so re-addition at the current level is impossible). Applied
//!   agrees only grow monotonically along the fold, so a certain
//!   refutation inside the resolved prefix stays a refutation at the
//!   skipped job's true fold position — its entries contribute
//!   nothing, exactly as if validated.
//! * Every cover FD is violation-free over the *surviving old* records
//!   (pre-batch FDs held before the batch; delete-phase additions were
//!   validated against the final relation), so every refuting pair
//!   involves a new record. Cluster-pruned validation therefore finds
//!   a witness for every refuted candidate: a skipped job would have
//!   reported exactly its full RHS set as violated, which is how
//!   [`process_inserts`](crate::DynFd::process_inserts) accounts
//!   skipped jobs toward the inefficiency threshold.
//! * All validations of the level run against **one** PLI-cache
//!   snapshot and all effects merge at the level barrier in original
//!   job order — the same discipline `validate_many_cached` uses — and
//!   a skipped job's effects are reproduced by
//!   [`probe_cache_effects`]. A job whose validation would have
//!   *built* a cache entry is never skipped.

use crate::errors::{DynFdError, DynFdResult};
use crate::{BatchMetrics, DynFd};
use dynfd_common::{AttrSet, RecordId};
use dynfd_relation::{
    adaptive_workers, agree_set, par_map, probe_cache_effects, probe_violation_score,
    validate_cached, validate_jobs_on_snapshot, validate_many, validate_with, CacheEffects,
    PliCacheSnapshot, ValidationJob, ValidationOptions, ValidationResult, ValidatorScratch,
};
use std::cmp::Reverse;

/// Levels smaller than this skip the probe pass: the fixed cost of a
/// probe sweep cannot beat validating a handful of jobs directly.
const MIN_ORDERED_JOBS: usize = 4;

/// Wave-2 chunk size is `max(CHUNK_FLOOR, CHUNK_PER_THREAD * threads)`:
/// big enough to amortize a parallel fan-out, small enough that the
/// resolved prefix — and with it the skip scan — re-arms frequently.
const CHUNK_FLOOR: usize = 16;
const CHUNK_PER_THREAD: usize = 4;

/// A level abandons the skip simulation once the applied-witness log
/// exceeds `APPLIED_BAIL_FACTOR * jobs + APPLIED_BAIL_FLOOR` entries
/// without refuting a single job. Agree sets that diverse never
/// converge on a skip, and the simulation's only real cost —
/// materializing one agree set per surviving violation, which the
/// actual witness fold recomputes after the level — would otherwise
/// scale with the violation count for zero benefit. The remaining jobs
/// then validate in one batch, which is exactly the unordered schedule
/// for the level's tail.
const APPLIED_BAIL_FACTOR: usize = 4;
const APPLIED_BAIL_FLOOR: usize = 64;

/// SplitMix64 finalizer: decorrelates the per-job probe seeds from the
/// (first_new, level, job-index) triple that derives them. Seeds are a
/// pure function of batch content, so probe sampling is deterministic
/// and thread-invariant.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DynFd {
    /// Whether the sampling-guided scheduler should run this level.
    pub(crate) fn ordering_enabled(&self, job_count: usize) -> bool {
        self.config.sample_ordering
            && self.config.sample_budget > 0
            && job_count >= MIN_ORDERED_JOBS
    }

    /// Validates one insert-phase level under sampling-guided ordering.
    ///
    /// Returns one entry per job, in job order: `Some(result)` for
    /// validated jobs (bit-identical to the unordered run's result) and
    /// `None` for jobs proven invalid-and-evicted without validating.
    /// The caller accounts each skipped job's full RHS set as invalid
    /// for the inefficiency threshold and feeds it nothing into the
    /// witness fold — both exactly what the unordered run would do.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_level_ordered(
        &mut self,
        jobs: &[ValidationJob],
        opts: &ValidationOptions,
        first_new: RecordId,
        new_slots: &[u32],
        level: usize,
        metrics: &mut BatchMetrics,
    ) -> DynFdResult<Vec<Option<ValidationResult>>> {
        let threads = self.config.effective_parallelism();
        let cache_on = self.cache_enabled();
        let snapshot = if cache_on {
            self.pli_cache.snapshot()
        } else {
            PliCacheSnapshot::empty()
        };

        // ---- Phase 1: probe every job against a sampled set of dirty
        // clusters. Seeds depend only on batch content and job index,
        // never on thread interleaving.
        let base = mix(first_new.0 ^ ((level as u64) << 32));
        let budget = self.config.sample_budget;
        let indexed: Vec<(usize, ValidationJob)> = jobs.iter().copied().enumerate().collect();
        let probe_workers = adaptive_workers(threads, jobs.len(), self.config.parallel_min_jobs);
        let scores: Vec<u32> = par_map(&indexed, probe_workers, |&(i, (lhs, rhs))| {
            probe_violation_score(
                &self.rel,
                lhs,
                rhs,
                first_new,
                new_slots,
                budget,
                mix(base ^ i as u64),
                &snapshot,
            )
        });
        metrics.sampling_probes += jobs.len();

        let mut flagged: Vec<usize> = (0..jobs.len()).filter(|&i| scores[i] > 0).collect();
        metrics.sampling_flagged += flagged.len();
        flagged.sort_by_key(|&i| (Reverse(scores[i]), i));

        // Nothing flagged (no reordering signal) or everything flagged
        // (no one left to skip): the schedule degenerates to the plain
        // level-at-once fan-out — take the cheap path.
        if flagged.is_empty() || flagged.len() == jobs.len() {
            return Ok(self
                .run_level_validations(jobs, opts)
                .into_iter()
                .map(Some)
                .collect());
        }

        let mut results: Vec<Option<ValidationResult>> = vec![None; jobs.len()];
        let mut effects: Vec<Option<CacheEffects>> = vec![None; jobs.len()];
        let mut skipped = vec![false; jobs.len()];
        let mut scratch = ValidatorScratch::new();

        // ---- Phase 2, wave 1: validate the certainly-invalid jobs
        // first, most violations first.
        self.validate_scatter(
            &flagged,
            jobs,
            opts,
            threads,
            cache_on,
            &snapshot,
            &mut scratch,
        )
        .into_iter()
        .zip(&flagged)
        .for_each(|((r, e), &i)| {
            results[i] = Some(r);
            effects[i] = e;
        });

        // ---- Phase 3: resolved-prefix scan + chunked wave 2.
        //
        // `applied` mirrors the witness fold exactly across the resolved
        // prefix `0..prefix_end`: entries of validated jobs apply their
        // agree set unless an earlier applied agree already evicted
        // their FD; skipped jobs contribute nothing (their entries are
        // all certain `continue`s).
        //
        // Refutation checks never enumerate `applied`. A candidate
        // `lhs -> r` is refuted iff some applicable agree (one with
        // `lhs ⊆ agree`) misses `r` — equivalently, iff `r` is outside
        // the *intersection* of all applicable agrees. So one
        // `surviving` attribute set per job carries the full refutation
        // state, each unresolved job holds a cursor into the append-only
        // `applied` log, and every `(job, agree)` pair is examined at
        // most once across the level — a violation-heavy level with
        // thousands of witnesses stays linear instead of rescanning the
        // whole log every chunk round.
        let universe: AttrSet = (0..self.rel.arity()).collect();
        let mut applied: Vec<AttrSet> = Vec::new();
        let mut prefix_end = 0usize;
        let mut remaining: Vec<Pending> = (0..jobs.len())
            .filter(|&i| scores[i] == 0)
            .map(|i| Pending {
                job: i,
                surviving: universe,
                seen: 0,
            })
            .collect();
        let chunk = CHUNK_FLOOR.max(CHUNK_PER_THREAD * threads);
        let bail_at = APPLIED_BAIL_FACTOR * jobs.len() + APPLIED_BAIL_FLOOR;
        let mut any_skip = false;

        loop {
            // Every job resolved: the simulation has no consumer left,
            // so don't fold the final chunk's violations for nothing.
            if remaining.is_empty() {
                break;
            }

            // Extend the resolved prefix, simulating the fold.
            while prefix_end < jobs.len() && (results[prefix_end].is_some() || skipped[prefix_end])
            {
                if let Some(result) = &results[prefix_end] {
                    let lhs = jobs[prefix_end].0;
                    let mut surviving = universe;
                    for agree in &applied {
                        if lhs.is_subset_of(agree) {
                            surviving = surviving.intersect(agree);
                        }
                    }
                    for (r, a, b) in result.violations() {
                        if !surviving.contains(r) {
                            continue; // refuted — the fold would `continue` too
                        }
                        let agree = agree_set(&self.rel, a, b).ok_or_else(|| {
                            DynFdError::invariant(
                                "insert-phase",
                                format!("violating pair ({a}, {b}) references dead records"),
                            )
                        })?;
                        // `lhs ⊆ agree` by construction, so the new
                        // entry applies to this job's own remaining
                        // candidates as well.
                        surviving = surviving.intersect(&agree);
                        applied.push(agree);
                    }
                }
                prefix_end += 1;
            }

            // Advance the unresolved jobs' cursors over the new tail of
            // the applied log and collect the now fully-refuted ones.
            let mut still = Vec::with_capacity(remaining.len());
            for mut p in remaining {
                let (lhs, live) = jobs[p.job];
                while p.seen < applied.len() {
                    let agree = &applied[p.seen];
                    p.seen += 1;
                    if lhs.is_subset_of(agree) {
                        p.surviving = p.surviving.intersect(agree);
                    }
                }
                if live.intersect(&p.surviving).is_empty() {
                    let cache_ok = if cache_on {
                        // A job whose validation would *build* a cache
                        // entry must run for real; probe-only effects
                        // (hit / resident / miss) are reproducible.
                        match probe_cache_effects(&self.rel, lhs, opts, &snapshot) {
                            Some(e) => {
                                effects[p.job] = Some(e);
                                true
                            }
                            None => false,
                        }
                    } else {
                        true
                    };
                    if cache_ok {
                        skipped[p.job] = true;
                        metrics.sampling_skipped += 1;
                        any_skip = true;
                        continue;
                    }
                }
                still.push(p);
            }
            remaining = still;

            if remaining.is_empty() {
                break; // early level termination: induction got the rest
            }
            // A skip at the prefix boundary unlocked more of the fold:
            // re-extend and rescan before spending any validation.
            if prefix_end < jobs.len() && skipped[prefix_end] {
                continue;
            }

            // Bail: the log is deep and nothing has been refuted — this
            // level's agree sets are too diverse for the simulation to
            // ever pay off. Validate everything left at once and stop
            // simulating (skipping is an optimization; validating is
            // always correct and what the unordered schedule does).
            if !any_skip && applied.len() > bail_at {
                let batch: Vec<usize> = remaining.drain(..).map(|p| p.job).collect();
                self.validate_scatter(
                    &batch,
                    jobs,
                    opts,
                    threads,
                    cache_on,
                    &snapshot,
                    &mut scratch,
                )
                .into_iter()
                .zip(&batch)
                .for_each(|((r, e), &i)| {
                    results[i] = Some(r);
                    effects[i] = e;
                });
                break;
            }

            // Wave 2: validate the next chunk in ascending job order so
            // the prefix keeps extending.
            let take = chunk.min(remaining.len());
            let batch: Vec<usize> = remaining.drain(..take).map(|p| p.job).collect();
            self.validate_scatter(
                &batch,
                jobs,
                opts,
                threads,
                cache_on,
                &snapshot,
                &mut scratch,
            )
            .into_iter()
            .zip(&batch)
            .for_each(|((r, e), &i)| {
                results[i] = Some(r);
                effects[i] = e;
            });
        }

        // ---- Level barrier: merge all cache effects in original job
        // order — the same discipline as `validate_many_cached`, so the
        // cache contents, LRU order, and counters are bit-identical to
        // the unordered run.
        if cache_on {
            let ordered: Vec<CacheEffects> = effects
                .into_iter()
                .map(|e| e.expect("every job resolved with cache effects"))
                .collect();
            self.pli_cache.merge(&ordered);
        }
        Ok(results)
    }

    /// Validates the jobs at `picks` (a subset of indices into `jobs`)
    /// and returns their results in `picks` order, with cache effects
    /// when the cache is on.
    ///
    /// `scratch` lives for the whole level: the schedule validates in
    /// several waves, and a fresh scratch per wave would re-grow the
    /// group tables the unordered level-at-once fan-out amortizes once.
    /// On the sequential path (the adaptive fallback, or one core) the
    /// caller's scratch is used directly; parallel workers own
    /// per-thread scratches as always.
    #[allow(clippy::too_many_arguments)]
    fn validate_scatter(
        &self,
        picks: &[usize],
        jobs: &[ValidationJob],
        opts: &ValidationOptions,
        threads: usize,
        cache_on: bool,
        snapshot: &PliCacheSnapshot,
        scratch: &mut ValidatorScratch,
    ) -> Vec<(ValidationResult, Option<CacheEffects>)> {
        let subset: Vec<ValidationJob> = picks.iter().map(|&i| jobs[i]).collect();
        let workers = adaptive_workers(threads, subset.len(), self.config.parallel_min_jobs);
        if workers <= 1 {
            return subset
                .iter()
                .map(|&(lhs, rhs)| {
                    if cache_on {
                        let (r, e) = validate_cached(&self.rel, lhs, rhs, opts, scratch, snapshot);
                        (r, Some(e))
                    } else {
                        (validate_with(&self.rel, lhs, rhs, opts, scratch), None)
                    }
                })
                .collect();
        }
        if cache_on {
            let (results, effects) = validate_jobs_on_snapshot(
                &self.rel,
                &subset,
                opts,
                threads,
                self.config.parallel_min_jobs,
                snapshot,
            );
            results
                .into_iter()
                .zip(effects.into_iter().map(Some))
                .collect()
        } else {
            validate_many(&self.rel, &subset, opts, workers)
                .into_iter()
                .map(|r| (r, None))
                .collect()
        }
    }
}

/// Incremental refutation state for one not-yet-resolved job: the
/// intersection of every applied agree set applicable to its LHS
/// (`surviving` — a candidate RHS is refuted iff it fell out of this
/// set) and a cursor over the append-only applied log marking how far
/// the intersection has been folded.
struct Pending {
    job: usize,
    surviving: AttrSet,
    seen: usize,
}
