//! PR 9 sweep: the explicitly vectorized PLI-intersection kernel and
//! the sampling-guided validation ordering, measured on the six paper
//! dataset shapes. Every A/B pair is measured with **interleaved**
//! samples (`bench_pair`): on this shared-CPU container the machine
//! drifts over the minutes a contiguous sample block takes, and that
//! drift used to land asymmetrically on whichever arm ran second. Two
//! sweeps land in `BENCH_pr9.json` at the workspace root:
//!
//! * `kernel/<shape>/{scalar,simd}` — the top non-singleton clusters of
//!   the two busiest attributes of each shape (at `DYNFD_SCALE_ROWS`
//!   rows, default one million) pairwise-intersected through
//!   `intersect_clusters`, once with the SIMD kernel disabled (scalar
//!   merge/gallop) and once enabled (SSE2/AVX2 block compare). The
//!   workload is merge-shaped on purpose: comparable cluster sizes stay
//!   under the gallop ratio, which is exactly the path the kernel
//!   vectorizes. Acceptance bar: `simd` beats `scalar` on every shape.
//! * `ordering/<shape>/{unordered,ordered}` — a full engine
//!   (bootstrap excluded) applying the same change batch with
//!   `sample_ordering` off and on, at `DYNFD_ORDERING_ROWS` rows
//!   (default 1,000 — each iteration clones the engine and re-applies
//!   a 2,000-op batch, which on the wide `actor` shape costs seconds
//!   even at this size, so this sweep runs well below paper scale; the
//!   clone cost is identical in both arms).
//!   Ordered rows carry `jobs_skipped`/`jobs_flagged`/`jobs_probed`
//!   annotations so the report shows *why* a shape did or didn't speed
//!   up. Covers are asserted identical between the arms before any
//!   sample is taken.
//! * `ordering/burst/{unordered,ordered}` — a deterministic adversarial
//!   shape where induction provably specializes four of five level-1
//!   jobs away (see [`bench_burst`]): the skip path's payoff, measured
//!   rather than assumed.

use criterion::{black_box, criterion_group, Criterion};
use dynfd_common::Schema;
use dynfd_core::{DynFd, DynFdConfig};
use dynfd_datagen::{GeneratedDataset, PAPER_PROFILES};
use dynfd_relation::{intersect_clusters, kernel, Batch, DynamicRelation};
use std::sync::Mutex;

/// Top clusters taken per attribute for the kernel workload: 12×12
/// pairwise intersections per shape.
const TOP_CLUSTERS: usize = 12;

/// Change-stream prefix retained per shape (see `scale.rs`).
const MAX_CHANGES: usize = 40_000;

/// Ops in the ordering sweep's measured batch.
const ORDERING_BATCH: usize = 2_000;

/// Per-shape ordering statistics captured during the bench pass and
/// spliced into the report rows by `main`.
static ORDERING_STATS: Mutex<Vec<(String, usize, usize, usize)>> = Mutex::new(Vec::new());

fn scale_rows() -> usize {
    std::env::var("DYNFD_SCALE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

fn ordering_rows() -> usize {
    std::env::var("DYNFD_ORDERING_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000)
}

/// The two attributes with the most non-singleton clusters — the PLIs
/// that carry the intersection work.
fn busiest_pair(rel: &DynamicRelation) -> (usize, usize) {
    let mut ranked: Vec<(usize, usize)> = (0..rel.arity())
        .map(|a| (rel.pli(a).non_singleton_count(), a))
        .collect();
    ranked.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
    (ranked[0].1, ranked[1].1)
}

/// The `n` largest non-singleton clusters of an attribute, largest
/// first, cloned out so the borrow doesn't pin the relation.
fn top_clusters(rel: &DynamicRelation, attr: usize, n: usize) -> Vec<Vec<u32>> {
    let mut clusters: Vec<Vec<u32>> = rel
        .pli(attr)
        .iter_non_singleton()
        .map(|(_, c)| c.to_vec())
        .collect();
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    clusters.truncate(n);
    clusters
}

fn bench_kernel(c: &mut Criterion) {
    c.sample_size(dynfd_bench::bench_samples(15));
    let rows = scale_rows();

    for profile in PAPER_PROFILES {
        let mut p = profile.scaled_to_rows(rows);
        p.changes = 0; // the kernel sweep needs only the initial rows
        eprintln!(
            "[kernel] generating {} at {} rows...",
            p.name, p.initial_rows
        );
        let data = GeneratedDataset::generate(&p);
        let rel = data.to_relation();
        let (a, b) = busiest_pair(&rel);
        let left = top_clusters(&rel, a, TOP_CLUSTERS);
        let right = top_clusters(&rel, b, TOP_CLUSTERS);
        if left.is_empty() || right.is_empty() {
            continue;
        }
        let slot_rids = rel.slot_rids();
        let workload = |out: &mut Vec<u32>| {
            let mut total = 0usize;
            for l in &left {
                for r in &right {
                    out.clear();
                    intersect_clusters(black_box(l), black_box(r), slot_rids, out);
                    total += out.len();
                }
            }
            total
        };
        let (mut out_scalar, mut out_simd) = (Vec::new(), Vec::new());

        // Interleaved A/B samples: the kernel flavor is flipped in the
        // (untimed) setup hook, so every scalar sample has a simd
        // neighbor taken under the same instantaneous machine load.
        let mut group = c.benchmark_group(format!("kernel/{}", p.name));
        group.bench_pair(
            "scalar",
            || kernel::set_simd_enabled(false),
            |_| workload(&mut out_scalar),
            "simd",
            || kernel::set_simd_enabled(true),
            |_| workload(&mut out_simd),
        );
        group.finish();
    }
    kernel::set_simd_enabled(true);
}

fn bench_ordering(c: &mut Criterion) {
    c.sample_size(dynfd_bench::bench_samples(11));
    let rows = ordering_rows();

    for profile in PAPER_PROFILES {
        let mut p = profile.scaled_to_rows(rows);
        p.changes = p.changes.min(MAX_CHANGES);
        eprintln!(
            "[ordering] generating + bootstrapping {} at {} rows...",
            p.name, p.initial_rows
        );
        let data = GeneratedDataset::generate(&p);
        let Some(batch) = data
            .batches(ORDERING_BATCH, Some(ORDERING_BATCH))
            .into_iter()
            .next()
        else {
            continue;
        };
        let config = |ordering: bool| DynFdConfig {
            sample_ordering: ordering,
            parallelism: 1,
            ..DynFdConfig::default()
        };
        // One HyFD bootstrap; the ordered arm reuses the same cover.
        let unordered = DynFd::new(data.to_relation(), config(false));
        let ordered = DynFd::with_cover(
            data.to_relation(),
            unordered.positive_cover().clone(),
            config(true),
        );

        // Capture the ordering statistics once, and assert the arms
        // agree before any timing: a scheduling bug would otherwise
        // show up as a "speedup".
        let mut probe = ordered.clone();
        let m = probe
            .apply_batch(&batch)
            .expect("generated batch applies")
            .metrics;
        {
            let mut check = unordered.clone();
            check.apply_batch(&batch).expect("generated batch applies");
            assert!(
                check.state_eq(&probe),
                "{}: ordered and unordered runs diverged",
                p.name
            );
        }
        ORDERING_STATS.lock().expect("stats lock").push((
            format!("ordering/{}/ordered", p.name),
            m.sampling_probes,
            m.sampling_flagged,
            m.sampling_skipped,
        ));
        let mut group = c.benchmark_group(format!("ordering/{}", p.name));
        group.bench_pair(
            "unordered",
            || unordered.clone(),
            |mut engine| engine.apply_batch(black_box(&batch)).expect("applies"),
            "ordered",
            || ordered.clone(),
            |mut engine| engine.apply_batch(black_box(&batch)).expect("applies"),
        );
        group.finish();
    }
}

/// Adversarial `ordering/burst` arm: the scaled-up twin of the
/// `scheduler_skips_refuted_jobs_deterministically` integration test.
/// Four blocks of `DYNFD_ORDERING_ROWS` records (block `a` shares one
/// value in column `a` and one in column 5) shape the cover's level 1
/// into `{0} -> {1,2,3,4,5}` plus `{a} -> {5}`, and the measured batch
/// (six violating pairs agreeing exactly on `{0,1,2,3,4}`, then an
/// all-alike noise tail) makes the scheduler flag job `{0}`, skip the
/// four refuted jobs, and terminate the level early — while the
/// unordered arm pays four `O(rows/4)` dirty-cluster scans for the
/// same verdicts. The paper shapes above measure the scheduler's
/// overhead on organic streams; this arm measures its payoff when the
/// induction actually specializes jobs away.
fn bench_burst(c: &mut Criterion) {
    c.sample_size(dynfd_bench::bench_samples(11));
    const COLS: usize = 6;
    // The burst batch is tiny (52 ops vs the shapes' 2000), so the
    // skipped scans — each O(block) — carry the arm's signal: size the
    // blocks well above the per-batch fixed costs.
    let block = (ordering_rows() * 8).max(64);
    eprintln!("[ordering] building burst shape at {} rows...", block * 4);
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(block * 4);
    for a in 1..=4usize {
        for i in 0..block {
            rows.push(
                (0..COLS)
                    .map(|c| {
                        if c == a {
                            format!("B{a}")
                        } else if c == 5 {
                            format!("Z{a}")
                        } else {
                            format!("b{a}i{i}c{c}")
                        }
                    })
                    .collect(),
            );
        }
    }
    let schema = Schema::anonymous("burst", COLS);
    let rel = DynamicRelation::from_rows(schema, &rows).expect("burst rows load");

    let mut batch = Batch::new();
    for k in 0..6u32 {
        for j in 0..2u32 {
            batch.insert(
                (0..COLS)
                    .map(|c| match c {
                        0 => format!("P{k}"),
                        5 => format!("q{k}{j}"),
                        c => format!("B{c}"),
                    })
                    .collect::<Vec<_>>(),
            );
        }
    }
    for n in 0..40u32 {
        batch.insert(
            (0..COLS)
                .map(|c| match c {
                    0 => format!("n{n}"),
                    5 => "Z".to_string(),
                    c => format!("B{c}"),
                })
                .collect::<Vec<_>>(),
        );
    }

    let config = |ordering: bool| DynFdConfig {
        sample_ordering: ordering,
        parallelism: 1,
        ..DynFdConfig::default()
    };
    let unordered = DynFd::new(rel.clone(), config(false));
    let ordered = DynFd::with_cover(rel, unordered.positive_cover().clone(), config(true));

    let mut probe = ordered.clone();
    let m = probe
        .apply_batch(&batch)
        .expect("burst batch applies")
        .metrics;
    assert!(
        m.sampling_skipped >= 4,
        "burst arm must skip its refuted jobs: {m:?}"
    );
    {
        let mut check = unordered.clone();
        check.apply_batch(&batch).expect("burst batch applies");
        assert!(
            check.state_eq(&probe),
            "burst: ordered and unordered runs diverged"
        );
    }
    ORDERING_STATS.lock().expect("stats lock").push((
        "ordering/burst/ordered".to_string(),
        m.sampling_probes,
        m.sampling_flagged,
        m.sampling_skipped,
    ));
    let mut group = c.benchmark_group("ordering/burst");
    group.bench_pair(
        "unordered",
        || unordered.clone(),
        |mut engine| engine.apply_batch(black_box(&batch)).expect("applies"),
        "ordered",
        || ordered.clone(),
        |mut engine| engine.apply_batch(black_box(&batch)).expect("applies"),
    );
    group.finish();
}

criterion_group!(benches, bench_kernel, bench_ordering, bench_burst);

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    benches();
    let stats = ORDERING_STATS.lock().expect("stats lock").clone();
    criterion::write_json_report(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json"),
        &[
            ("bench", "simd kernel + sampling-ordering sweep".into()),
            ("kernel_rows_per_shape", scale_rows().into()),
            ("ordering_rows_per_shape", ordering_rows().into()),
            ("ordering_batch_ops", ORDERING_BATCH.into()),
            ("detected_kernel", kernel::detected_kernel().name().into()),
            ("kernel_lanes", kernel::detected_kernel().lanes().into()),
            ("available_cores", cores.into()),
        ],
        &|r| {
            stats
                .iter()
                .find(|(id, _, _, _)| *id == r.id)
                .map(|&(_, probes, flagged, skipped)| {
                    vec![
                        ("jobs_probed".to_string(), probes.into()),
                        ("jobs_flagged".to_string(), flagged.into()),
                        ("jobs_skipped".to_string(), skipped.into()),
                    ]
                })
                .unwrap_or_default()
        },
    )
    .expect("write BENCH_pr9.json");
}
