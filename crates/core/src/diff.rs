//! FD change signalling (Step 4 of the paper's pipeline).

use crate::BatchMetrics;
use dynfd_common::Fd;
use std::collections::BTreeSet;

/// One evolution of the minimal FD set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FdChange {
    /// The FD became a minimal FD in this batch.
    Added(Fd),
    /// The FD stopped being a minimal FD in this batch (it either grew
    /// a violation or stopped being minimal).
    Removed(Fd),
}

/// The outcome of one [`DynFd::apply_batch`](crate::DynFd::apply_batch)
/// call: the delta of the minimal FD set plus work metrics.
#[derive(Clone, Debug, Default)]
pub struct BatchResult {
    /// Minimal FDs that hold now but did not before the batch, sorted.
    pub added: Vec<Fd>,
    /// Minimal FDs that held before the batch but do not any more, sorted.
    pub removed: Vec<Fd>,
    /// Work counters for this batch.
    pub metrics: BatchMetrics,
}

impl BatchResult {
    /// Whether the batch changed the minimal FD set at all.
    pub fn is_unchanged(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// The changes as a single ordered stream (removals first, matching
    /// the delete-before-insert processing order).
    pub fn changes(&self) -> impl Iterator<Item = FdChange> + '_ {
        self.removed
            .iter()
            .map(|&fd| FdChange::Removed(fd))
            .chain(self.added.iter().map(|&fd| FdChange::Added(fd)))
    }
}

/// Computes the delta between two minimal-FD snapshots.
pub(crate) fn diff_covers(before: &[Fd], after: &[Fd]) -> (Vec<Fd>, Vec<Fd>) {
    let before: BTreeSet<Fd> = before.iter().copied().collect();
    let after: BTreeSet<Fd> = after.iter().copied().collect();
    let added = after.difference(&before).copied().collect();
    let removed = before.difference(&after).copied().collect();
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::AttrSet;

    fn fd(lhs: &[usize], rhs: usize) -> Fd {
        Fd::new(lhs.iter().copied().collect::<AttrSet>(), rhs)
    }

    #[test]
    fn diff_finds_both_directions() {
        let before = vec![fd(&[1], 0), fd(&[2], 3)];
        let after = vec![fd(&[1], 0), fd(&[1, 2], 3), fd(&[4], 0)];
        let (added, removed) = diff_covers(&before, &after);
        // Sorted by (lhs-bitset, rhs): {1,2} < {4}.
        assert_eq!(added, vec![fd(&[1, 2], 3), fd(&[4], 0)]);
        assert_eq!(removed, vec![fd(&[2], 3)]);
    }

    #[test]
    fn unchanged_batch() {
        let fds = vec![fd(&[1], 0)];
        let (added, removed) = diff_covers(&fds, &fds);
        assert!(added.is_empty() && removed.is_empty());
        let r = BatchResult {
            added,
            removed,
            metrics: Default::default(),
        };
        assert!(r.is_unchanged());
        assert_eq!(r.changes().count(), 0);
    }

    #[test]
    fn change_stream_orders_removals_first() {
        let r = BatchResult {
            added: vec![fd(&[1], 0)],
            removed: vec![fd(&[2], 0)],
            metrics: Default::default(),
        };
        let changes: Vec<FdChange> = r.changes().collect();
        assert_eq!(
            changes,
            vec![FdChange::Removed(fd(&[2], 0)), FdChange::Added(fd(&[1], 0))]
        );
    }
}
