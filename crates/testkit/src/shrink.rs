//! Delta-debugging trace minimization.
//!
//! Classic ddmin over the two lists that make a trace big — the op
//! script and the initial rows — followed by cheap final passes (batch
//! size → 1, value canonicalization). The positional op encoding of
//! [`Trace`](crate::Trace) guarantees every candidate produced here is
//! replayable, so the predicate never has to reject a candidate for
//! being malformed.
//!
//! The predicate is "does the harness still fail on this trace"; the
//! shrinker only keeps reductions that preserve the failure, so the
//! result is 1-minimal: removing any single remaining op (or row) makes
//! the failure disappear.

use crate::Trace;

/// Minimizes the complement-removal step of ddmin over `items`: returns
/// a subsequence on which `test` still returns `true`, 1-minimal w.r.t.
/// element removal.
fn ddmin<T: Clone>(items: &[T], test: &mut impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = items.to_vec();
    // Fast path: does the failure survive with nothing at all?
    if test(&[]) {
        return Vec::new();
    }
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && test(&candidate) {
                cur = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    // Final singleton sweep (covers the len == 1 case and any chunk
    // boundaries the geometric schedule skipped).
    let mut i = 0;
    while cur.len() > 1 && i < cur.len() {
        let mut candidate = cur.clone();
        candidate.remove(i);
        if test(&candidate) {
            cur = candidate;
        } else {
            i += 1;
        }
    }
    cur
}

/// Shrinks `trace` to a near-minimal trace on which `still_fails`
/// returns `true`.
///
/// `still_fails(trace)` must be `true` for the input trace; the returned
/// trace preserves that. Reduction order: ops (the usual bulk), then
/// initial rows, then batch size, then one more op pass (row removal can
/// unlock op removals).
pub fn shrink_trace(trace: &Trace, mut still_fails: impl FnMut(&Trace) -> bool) -> Trace {
    debug_assert!(still_fails(trace), "input trace must fail");
    let mut best = trace.clone();

    let with_ops = |base: &Trace, ops: &[crate::TraceOp]| Trace {
        ops: ops.to_vec(),
        ..base.clone()
    };
    let with_rows = |base: &Trace, rows: &[Vec<String>]| Trace {
        initial_rows: rows.to_vec(),
        ..base.clone()
    };

    // Pass 1: ops.
    let base = best.clone();
    best.ops = ddmin(&base.ops, &mut |ops| still_fails(&with_ops(&base, ops)));

    // Pass 2: initial rows.
    let base = best.clone();
    best.initial_rows = ddmin(&base.initial_rows, &mut |rows| {
        still_fails(&with_rows(&base, rows))
    });

    // Pass 3: batch size down to 1 (smaller batches mean more checked
    // intermediate states, i.e. an earlier, tighter failure point).
    if best.batch_size > 1 {
        let candidate = Trace {
            batch_size: 1,
            ..best.clone()
        };
        if still_fails(&candidate) {
            best = candidate;
        }
    }

    // Pass 4: a second op sweep — removing rows often unlocks further op
    // removals (e.g. deletes that only existed to hit those rows).
    let base = best.clone();
    best.ops = ddmin(&base.ops, &mut |ops| still_fails(&with_ops(&base, ops)));

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceOp, TraceProfile};

    #[test]
    fn ddmin_finds_single_culprit() {
        let items: Vec<u32> = (0..50).collect();
        let mut calls = 0;
        let min = ddmin(&items, &mut |xs| {
            calls += 1;
            xs.contains(&37)
        });
        assert_eq!(min, vec![37]);
        assert!(calls < 200, "ddmin should be sub-quadratic: {calls}");
    }

    #[test]
    fn ddmin_keeps_interacting_pair() {
        let items: Vec<u32> = (0..32).collect();
        let min = ddmin(&items, &mut |xs| xs.contains(&3) && xs.contains(&28));
        assert_eq!(min, vec![3, 28]);
    }

    #[test]
    fn ddmin_handles_always_failing_input() {
        let min = ddmin(&[1, 2, 3], &mut |_| true);
        assert!(min.is_empty());
    }

    #[test]
    fn shrink_preserves_failure_and_reduces() {
        // Synthetic predicate: "fails" iff the trace still contains at
        // least one insert of the poisoned row.
        let trace = Trace::generate(TraceProfile::Uniform, 6);
        let poison = vec!["poison".to_string(); trace.arity()];
        let mut trace = trace;
        trace
            .ops
            .insert(trace.ops.len() / 2, TraceOp::Insert(poison.clone()));

        let fails = |t: &Trace| {
            t.ops
                .iter()
                .any(|op| matches!(op, TraceOp::Insert(r) if *r == poison))
        };
        assert!(fails(&trace));
        let shrunk = shrink_trace(&trace, fails);
        assert!(fails(&shrunk), "shrinking must preserve the failure");
        assert_eq!(shrunk.ops.len(), 1, "exactly the poisoned insert");
        assert!(shrunk.initial_rows.is_empty(), "rows are irrelevant here");
        assert_eq!(shrunk.batch_size, 1);
    }
}
