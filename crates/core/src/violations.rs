//! Surrogate violation annotations (§5.2 validation pruning).
//!
//! Most delete-phase validations only confirm that a non-FD is still
//! violated — expensive busywork. DynFD therefore attaches to every
//! maximal non-FD one *violating record pair*: as long as both records
//! are alive, the non-FD cannot have become valid and its validation is
//! skipped. A reverse index (record id → annotated non-FDs) lets a batch
//! of deletes invalidate exactly the affected annotations.

use dynfd_common::{Fd, RecordId};
use std::collections::{HashMap, HashSet};

/// Bidirectional index of surrogate violations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViolationStore {
    by_fd: HashMap<Fd, (RecordId, RecordId)>,
    by_record: HashMap<RecordId, HashSet<Fd>>,
}

impl ViolationStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ViolationStore::default()
    }

    /// Number of annotated non-FDs.
    pub fn len(&self) -> usize {
        self.by_fd.len()
    }

    /// Whether no annotation is stored.
    pub fn is_empty(&self) -> bool {
        self.by_fd.is_empty()
    }

    /// The cached violating pair for `fd`, if a live one is attached.
    pub fn get(&self, fd: &Fd) -> Option<(RecordId, RecordId)> {
        self.by_fd.get(fd).copied()
    }

    /// Attaches (or replaces) the violating pair of `fd`.
    pub fn attach(&mut self, fd: Fd, pair: (RecordId, RecordId)) {
        if let Some(old) = self.by_fd.insert(fd, pair) {
            self.unlink(old.0, &fd);
            if old.1 != old.0 {
                self.unlink(old.1, &fd);
            }
        }
        self.by_record.entry(pair.0).or_default().insert(fd);
        self.by_record.entry(pair.1).or_default().insert(fd);
    }

    /// Drops the annotation of `fd` (e.g. because the non-FD left the
    /// negative cover). Absent annotations are ignored.
    pub fn detach(&mut self, fd: &Fd) {
        if let Some((a, b)) = self.by_fd.remove(fd) {
            self.unlink(a, fd);
            if b != a {
                self.unlink(b, fd);
            }
        }
    }

    /// Invalidates every annotation that references one of the deleted
    /// records. Returns how many annotations were dropped; the affected
    /// non-FDs now answer [`ViolationStore::get`] with `None`, which the
    /// delete phase reads as "needs validation".
    pub fn purge_records(&mut self, deleted: &[RecordId]) -> usize {
        let mut dropped = 0usize;
        for rid in deleted {
            let Some(fds) = self.by_record.remove(rid) else {
                continue;
            };
            for fd in fds {
                if let Some((a, b)) = self.by_fd.remove(&fd) {
                    dropped += 1;
                    // Unlink the partner record's reverse entry.
                    let partner = if a == *rid { b } else { a };
                    if partner != *rid {
                        self.unlink(partner, &fd);
                    }
                }
            }
        }
        dropped
    }

    /// All annotations as a deterministically sorted list (test oracle
    /// for comparing runs).
    pub fn sorted_annotations(&self) -> Vec<(Fd, (RecordId, RecordId))> {
        let mut all: Vec<_> = self.by_fd.iter().map(|(&fd, &pair)| (fd, pair)).collect();
        all.sort();
        all
    }

    /// Drops all annotations (used when covers are rebuilt wholesale).
    pub fn clear(&mut self) {
        self.by_fd.clear();
        self.by_record.clear();
    }

    fn unlink(&mut self, rid: RecordId, fd: &Fd) {
        if let Some(set) = self.by_record.get_mut(&rid) {
            set.remove(fd);
            if set.is_empty() {
                self.by_record.remove(&rid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::AttrSet;

    fn fd(lhs: &[usize], rhs: usize) -> Fd {
        Fd::new(lhs.iter().copied().collect::<AttrSet>(), rhs)
    }

    fn r(i: u64) -> RecordId {
        RecordId(i)
    }

    #[test]
    fn attach_get_detach() {
        let mut store = ViolationStore::new();
        let f = fd(&[1], 0);
        assert_eq!(store.get(&f), None);
        store.attach(f, (r(1), r(2)));
        assert_eq!(store.get(&f), Some((r(1), r(2))));
        assert_eq!(store.len(), 1);
        store.detach(&f);
        assert_eq!(store.get(&f), None);
        assert!(store.is_empty());
    }

    #[test]
    fn purge_invalidates_touching_annotations_only() {
        let mut store = ViolationStore::new();
        let f1 = fd(&[1], 0);
        let f2 = fd(&[2], 0);
        let f3 = fd(&[3], 0);
        store.attach(f1, (r(1), r(2)));
        store.attach(f2, (r(2), r(3)));
        store.attach(f3, (r(4), r(5)));
        let dropped = store.purge_records(&[r(2)]);
        assert_eq!(dropped, 2);
        assert_eq!(store.get(&f1), None);
        assert_eq!(store.get(&f2), None);
        assert_eq!(store.get(&f3), Some((r(4), r(5))));
    }

    #[test]
    fn reattach_replaces_pair_and_reverse_links() {
        let mut store = ViolationStore::new();
        let f = fd(&[1], 0);
        store.attach(f, (r(1), r(2)));
        store.attach(f, (r(3), r(4)));
        assert_eq!(store.get(&f), Some((r(3), r(4))));
        // Purging the *old* records must not disturb the new annotation.
        assert_eq!(store.purge_records(&[r(1), r(2)]), 0);
        assert_eq!(store.get(&f), Some((r(3), r(4))));
        // Purging a new record drops it.
        assert_eq!(store.purge_records(&[r(4)]), 1);
        assert_eq!(store.get(&f), None);
    }

    #[test]
    fn purge_of_unknown_record_is_noop() {
        let mut store = ViolationStore::new();
        store.attach(fd(&[1], 0), (r(1), r(2)));
        assert_eq!(store.purge_records(&[r(99)]), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn shared_record_across_many_fds() {
        let mut store = ViolationStore::new();
        for rhs in 1..5 {
            store.attach(fd(&[0], rhs), (r(7), r(8)));
        }
        assert_eq!(store.len(), 4);
        assert_eq!(store.purge_records(&[r(7)]), 4);
        assert!(store.is_empty());
    }
}
