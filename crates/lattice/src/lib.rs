//! # dynfd-lattice
//!
//! FD search-space machinery (paper Section 3.2):
//!
//! * [`FdTree`] — an *FD prefix tree*: a trie over ascending attribute
//!   indices whose node annotations mark right-hand sides. Each
//!   annotation on the path `X` represents the FD `X -> A`. The tree
//!   offers the generalization / specialization / level lookups that
//!   DynFD calls constantly.
//! * Cover semantics: the **positive cover** stores all *minimal* FDs,
//!   the **negative cover** all *maximal* non-FDs. Both are `FdTree`s;
//!   helper methods ([`FdTree::add_minimal`], [`FdTree::add_maximal`])
//!   maintain the antichain invariants.
//! * [`invert_positive_cover`] — Algorithm 1 of the paper: the first
//!   published algorithm deriving the negative cover from a positive
//!   cover (the opposite direction of classic *dependency induction*).
//! * [`specialize_into`] / [`generalize_into`] — the shared kernels of
//!   dependency induction (Algorithms 3 and 6) also used by the static
//!   algorithms.
//! * [`NaiveCover`] — an O(n²) reference implementation of the same
//!   interface, used by the property-test suites as an oracle for
//!   `FdTree`.

#![warn(missing_docs)]

pub mod closure;
mod induction;
mod inversion;
pub mod io;
mod naive;
mod tree;

pub use induction::{generalize_into, induce_from_negative_cover, specialize_into};
pub use inversion::invert_positive_cover;
pub use naive::NaiveCover;
pub use tree::FdTree;
