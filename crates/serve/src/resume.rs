//! Exactly-once session resume: the server side of the reconnect
//! protocol.
//!
//! A client that wants exactly-once apply semantics opens its
//! connection with a `Hello` frame naming a *session* (a stable
//! client-chosen id that outlives any one TCP/unix connection) and then
//! stamps every `Apply` with a per-tenant **session sequence number**:
//! 1, 2, 3, … in submission order. The registry keeps, per session and
//! tenant, the highest sequence accepted, the set still in flight, and
//! a bounded window of already-settled responses (the **ack-replay
//! window**). The rules, applied under one lock per session:
//!
//! * `seq == highest + 1` — fresh work: accepted, marked pending, and
//!   the caller submits it to the engine exactly once;
//! * `seq <= highest` and settled within the window — a re-send of work
//!   the server already finished (the response frame was lost): the
//!   recorded response is **replayed**, the batch is not re-applied;
//! * `seq <= highest` but still pending — a re-send racing its own
//!   completion (client reconnected while the batch sat queued): the
//!   duplicate is **absorbed**; the completion will route to whichever
//!   connection the session is attached to now;
//! * `seq <= highest` but older than the window, or `seq > highest + 1`
//!   (a gap) — protocol violation, answered with wire code 20. A
//!   compliant client never does either: it re-sends contiguously from
//!   its oldest unacked frame, and the window is sized to its maximum
//!   in-flight count (see [`SessionRegistry::new`]).
//!
//! Every accepted sequence settles into the window **whatever the
//! outcome** — a governance rejection (codes 13/17/19…) is a settled
//! response like any success. That keeps sequences strictly contiguous:
//! a client retrying a rejected batch assigns a *new* sequence number,
//! while a client re-sending an *unacked* frame (it never saw any
//! response) deduplicates against the old one. Batches therefore apply
//! at most once no matter how often the network forces a re-send.
//!
//! Responses for sessioned applies route through the session's
//! currently-attached sink, not the connection that carried the frame —
//! after a reconnect, completions for batches submitted on the dead
//! connection land on the live one. Under duplicated frames a response
//! may be delivered more than once (settle + replay); *applies* are
//! exactly-once, responses are at-least-once, and clients correlate by
//! request id.

use crate::session::ResponseSink;
use crate::wire::Response;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};

/// Default ack-replay window: settled responses retained per (session,
/// tenant). Must be at least the client's maximum in-flight frames per
/// tenant; the bundled [`crate::SessionClient`] pipelines far less.
pub const DEFAULT_WINDOW: usize = 64;

/// What the registry decided about one sessioned apply.
#[derive(Debug)]
pub enum Route {
    /// `highest + 1`: fresh work. The caller submits to the engine and
    /// settles the outcome via [`SessionHandle::settle`].
    Fresh,
    /// A re-send of an already-settled sequence: re-send this recorded
    /// response, do not re-apply.
    Replay(Response),
    /// A re-send of a sequence still in flight: absorb the duplicate;
    /// the pending completion will answer it.
    InFlight,
    /// A gap or an off-window re-send: answer wire code 20.
    Violation(String),
}

struct TenantLedger {
    highest: u64,
    pending: BTreeSet<u64>,
    settled: VecDeque<(u64, Response)>,
}

struct SessionInner {
    epoch: u64,
    sink: Option<Arc<dyn ResponseSink>>,
    tenants: HashMap<String, TenantLedger>,
}

/// One live client session: per-tenant sequence ledgers plus the sink
/// of whichever connection currently speaks for the session.
pub struct SessionHandle {
    id: String,
    window: usize,
    inner: Mutex<SessionInner>,
}

impl SessionHandle {
    /// The client-chosen session id.
    pub fn id(&self) -> &str {
        &self.id
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SessionInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Classifies one sessioned apply (see the module docs for the
    /// rules). `Fresh` reserves the sequence: the caller *must* follow
    /// up with [`SessionHandle::settle`] once the outcome is known.
    pub fn route(&self, tenant: &str, seq: u64) -> Route {
        let mut inner = self.lock();
        let ledger = inner
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantLedger {
                highest: 0,
                pending: BTreeSet::new(),
                settled: VecDeque::new(),
            });
        if seq == ledger.highest + 1 {
            ledger.highest = seq;
            ledger.pending.insert(seq);
            return Route::Fresh;
        }
        if seq > ledger.highest {
            return Route::Violation(format!(
                "sequence gap: got {seq}, expected {}",
                ledger.highest + 1
            ));
        }
        if ledger.pending.contains(&seq) {
            return Route::InFlight;
        }
        match ledger.settled.iter().find(|(s, _)| *s == seq) {
            Some((_, resp)) => Route::Replay(resp.clone()),
            None => Route::Violation(format!(
                "sequence {seq} fell off the {}-deep replay window (highest {})",
                self.window, ledger.highest
            )),
        }
    }

    /// Records the outcome of sequence `seq` on `tenant` and forwards
    /// it to the session's currently-attached sink (if any). Called
    /// from worker completions and from synchronous admission errors —
    /// every `Fresh` route settles exactly once.
    pub fn settle(&self, tenant: &str, seq: u64, resp: Response) {
        let sink = {
            let mut inner = self.lock();
            if let Some(ledger) = inner.tenants.get_mut(tenant) {
                ledger.pending.remove(&seq);
                ledger.settled.push_back((seq, resp.clone()));
                while ledger.settled.len() > self.window {
                    ledger.settled.pop_front();
                }
            }
            inner.sink.clone()
        };
        // Send outside the session lock: the sink may do real I/O.
        if let Some(sink) = sink {
            sink.send(&resp);
        }
    }

    /// Points the session at a new connection's sink, detaching any
    /// previous one. Returns the new epoch (1 = first attach).
    pub fn attach(&self, sink: Arc<dyn ResponseSink>) -> u64 {
        let mut inner = self.lock();
        inner.epoch += 1;
        inner.sink = Some(sink);
        inner.epoch
    }

    /// Detaches `sink` if it is still the session's current one (a
    /// newer connection may have re-attached first — then this is a
    /// no-op).
    pub fn detach(&self, sink: &Arc<dyn ResponseSink>) {
        let mut inner = self.lock();
        if let Some(current) = &inner.sink {
            if Arc::ptr_eq(current, sink) {
                inner.sink = None;
            }
        }
    }

    /// Highest sequence accepted for `tenant` (0 = none yet).
    pub fn highest(&self, tenant: &str) -> u64 {
        self.lock().tenants.get(tenant).map_or(0, |l| l.highest)
    }
}

/// All sessions the server knows, keyed by client-chosen id. Shared by
/// every connection of a transport so a reconnect (same id, new
/// connection) resumes the same ledgers.
pub struct SessionRegistry {
    window: usize,
    sessions: Mutex<HashMap<String, Arc<SessionHandle>>>,
    resumed: std::sync::atomic::AtomicU64,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new(DEFAULT_WINDOW)
    }
}

impl SessionRegistry {
    /// A registry whose sessions retain `window` settled responses per
    /// tenant. Size it to at least the maximum frames a client may have
    /// unacked per tenant — a re-send older than the window is
    /// unanswerable (code 20) because its response is gone.
    pub fn new(window: usize) -> SessionRegistry {
        SessionRegistry {
            window: window.max(1),
            sessions: Mutex::new(HashMap::new()),
            resumed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Finds or creates session `id` and attaches `sink` as its current
    /// connection. Returns the handle and the attach epoch (1 = brand
    /// new, >1 = resumed).
    pub fn attach(&self, id: &str, sink: Arc<dyn ResponseSink>) -> (Arc<SessionHandle>, u64) {
        let handle = {
            let mut sessions = self.sessions.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(sessions.entry(id.to_string()).or_insert_with(|| {
                Arc::new(SessionHandle {
                    id: id.to_string(),
                    window: self.window,
                    inner: Mutex::new(SessionInner {
                        epoch: 0,
                        sink: None,
                        tenants: HashMap::new(),
                    }),
                })
            }))
        };
        let epoch = handle.attach(sink);
        if epoch > 1 {
            self.resumed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        (handle, epoch)
    }

    /// Sessions ever created.
    pub fn len(&self) -> usize {
        self.sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no session was ever created.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-attaches (resumes) observed over the registry's lifetime.
    pub fn resumed(&self) -> u64 {
        self.resumed.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CollectSink {
        sent: Mutex<Vec<Response>>,
        count: AtomicU64,
    }

    impl ResponseSink for CollectSink {
        fn send(&self, resp: &Response) {
            self.sent
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(resp.clone());
            self.count.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn ok(seq: u64) -> Response {
        Response::ok(seq, "t", seq, 0, 0)
    }

    #[test]
    fn contiguous_sequences_are_fresh_then_replayable() {
        let reg = SessionRegistry::new(4);
        let sink = Arc::new(CollectSink::default());
        let (h, epoch) = reg.attach("s", sink.clone());
        assert_eq!(epoch, 1);
        assert!(matches!(h.route("t", 1), Route::Fresh));
        h.settle("t", 1, ok(1));
        // Re-send of a settled seq replays without touching `highest`.
        match h.route("t", 1) {
            Route::Replay(r) => assert_eq!(r.request_id, 1),
            other => panic!("expected replay, got {other:?}"),
        }
        assert_eq!(h.highest("t"), 1);
        assert!(matches!(h.route("t", 2), Route::Fresh));
    }

    #[test]
    fn gaps_and_off_window_resends_are_violations() {
        let reg = SessionRegistry::new(2);
        let sink = Arc::new(CollectSink::default());
        let (h, _) = reg.attach("s", sink);
        assert!(matches!(h.route("t", 3), Route::Violation(_)), "gap");
        for seq in 1..=4 {
            assert!(matches!(h.route("t", seq), Route::Fresh));
            h.settle("t", seq, ok(seq));
        }
        // Window depth 2: seqs 3 and 4 replay, 1 and 2 are gone.
        assert!(matches!(h.route("t", 4), Route::Replay(_)));
        assert!(matches!(h.route("t", 3), Route::Replay(_)));
        assert!(matches!(h.route("t", 1), Route::Violation(_)));
    }

    #[test]
    fn in_flight_duplicates_are_absorbed_and_settle_once() {
        let reg = SessionRegistry::new(4);
        let sink = Arc::new(CollectSink::default());
        let (h, _) = reg.attach("s", sink.clone());
        assert!(matches!(h.route("t", 1), Route::Fresh));
        // The client reconnected and re-sent seq 1 before it completed.
        assert!(matches!(h.route("t", 1), Route::InFlight));
        assert_eq!(sink.count.load(Ordering::SeqCst), 0);
        h.settle("t", 1, ok(1));
        assert_eq!(sink.count.load(Ordering::SeqCst), 1, "one settle, one send");
    }

    #[test]
    fn settle_routes_to_the_newest_attached_sink() {
        let reg = SessionRegistry::new(4);
        let first = Arc::new(CollectSink::default());
        let (h, _) = reg.attach("s", first.clone());
        assert!(matches!(h.route("t", 1), Route::Fresh));
        // Reconnect: a second connection takes over the session.
        let second = Arc::new(CollectSink::default());
        let (h2, epoch) = reg.attach("s", second.clone());
        assert!(Arc::ptr_eq(&h, &h2));
        assert_eq!(epoch, 2);
        assert_eq!(reg.resumed(), 1);
        // The old connection detaching must not steal the new sink.
        let first_dyn: Arc<dyn ResponseSink> = first.clone();
        h.detach(&first_dyn);
        h.settle("t", 1, ok(1));
        assert_eq!(first.count.load(Ordering::SeqCst), 0);
        assert_eq!(second.count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn tenant_ledgers_are_independent() {
        let reg = SessionRegistry::default();
        let sink = Arc::new(CollectSink::default());
        let (h, _) = reg.attach("s", sink);
        assert!(matches!(h.route("a", 1), Route::Fresh));
        assert!(matches!(h.route("b", 1), Route::Fresh));
        h.settle("a", 1, ok(1));
        assert!(matches!(h.route("a", 1), Route::Replay(_)));
        assert!(matches!(h.route("b", 1), Route::InFlight));
    }
}
