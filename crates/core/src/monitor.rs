//! Longitudinal FD tracking (paper Section 1 and Section 8, item 1).
//!
//! The paper motivates maintenance with *temporal* questions: which
//! dependencies are robust over time, which flicker with daily business
//! (`num_sales -> num_shipments` holding only overnight), and which
//! sudden breaks signal erroneous updates. [`FdMonitor`] consumes the
//! [`BatchResult`] stream a [`DynFd`](crate::DynFd) instance produces
//! and answers those questions: per-FD age, flip counts, robustness and
//! volatility queries, and an alert list of robust dependencies that
//! just broke.

use crate::BatchResult;
use dynfd_common::Fd;
use std::collections::HashMap;

/// Per-FD lifetime statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct FdStats {
    /// Batch index at which the FD (re-)appeared; `None` while absent.
    present_since: Option<u64>,
    /// Total number of batches the FD was present after.
    batches_present: u64,
    /// Number of status changes (appearances + disappearances).
    flips: u32,
}

/// Tracks the evolution of the minimal FD set across batches.
///
/// Feed every [`BatchResult`] to [`FdMonitor::observe`]; query
/// robustness and volatility at any time.
///
/// ```
/// use dynfd_core::{DynFd, DynFdConfig, FdMonitor};
/// use dynfd_relation::{Batch, DynamicRelation};
/// use dynfd_common::Schema;
///
/// let rel = DynamicRelation::from_rows(
///     Schema::of("t", &["a", "b"]),
///     &[vec!["x", "1"], vec!["x", "1"]],
/// ).unwrap();
/// let mut dynfd = DynFd::new(rel, DynFdConfig::default());
/// let mut monitor = FdMonitor::new(&dynfd.minimal_fds());
///
/// let mut batch = Batch::new();
/// batch.insert(vec!["x", "2"]); // breaks a -> b and the constants
/// let result = dynfd.apply_batch(&batch).unwrap();
/// let report = monitor.observe(&result);
/// assert!(!report.broken.is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct FdMonitor {
    batch_no: u64,
    stats: HashMap<Fd, FdStats>,
    /// Degraded-mode cover rebuilds observed across all batches (from
    /// `BatchMetrics::cover_rebuilds`).
    recoveries: u64,
    /// Total write-ahead-log bytes observed (`BatchMetrics::wal_bytes`).
    wal_bytes: u64,
    /// Total fsync calls observed (`BatchMetrics::fsyncs`).
    fsyncs: u64,
    /// Total WAL frames replayed by recoveries that preceded observed
    /// batches (`BatchMetrics::recovery_replayed_batches`).
    replayed_batches: u64,
    /// Highest truncated-out batch sequence number observed
    /// (`BatchMetrics::last_truncated_seq`); 0 = never.
    last_truncated_seq: u64,
}

/// What one batch did to the tracked FD population, with ages attached.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MonitorReport {
    /// FDs that disappeared, with the number of batches they had been
    /// continuously present (their *age* at breakage).
    pub broken: Vec<(Fd, u64)>,
    /// FDs that appeared; `true` marks a *re*-appearance (the FD held
    /// before at some point — a flickering dependency).
    pub appeared: Vec<(Fd, bool)>,
    /// Whether this batch triggered a degraded-mode cover rebuild
    /// (`BatchMetrics::cover_rebuilds > 0`) — an operator alert: the FD
    /// deltas of this batch reflect a recovery, not organic data change.
    pub recovered: bool,
}

impl FdMonitor {
    /// Starts tracking from an initial minimal FD set (age 0 each).
    pub fn new(initial: &[Fd]) -> Self {
        let mut m = FdMonitor::default();
        for &fd in initial {
            m.stats.insert(
                fd,
                FdStats {
                    present_since: Some(0),
                    ..FdStats::default()
                },
            );
        }
        m
    }

    /// Number of batches observed so far.
    pub fn batches_observed(&self) -> u64 {
        self.batch_no
    }

    /// Total degraded-mode cover rebuilds observed across all batches.
    pub fn recovery_count(&self) -> u64 {
        self.recoveries
    }

    /// Total bytes appended to the write-ahead batch log across all
    /// observed batches (0 for a purely in-memory engine).
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Total `fsync` calls the durable engine issued across all
    /// observed batches.
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs
    }

    /// Total WAL frames replayed by crash recoveries that preceded
    /// observed batches — nonzero values mean the process restarted at
    /// least once and resumed from durable state.
    pub fn recovery_replayed_batches(&self) -> u64 {
        self.replayed_batches
    }

    /// The highest batch sequence number ever rewound out of the WAL
    /// (rejected batch or corruption truncation), if any — an operator
    /// signal that logged work was deliberately discarded.
    pub fn last_truncated_seq(&self) -> Option<u64> {
        (self.last_truncated_seq > 0).then_some(self.last_truncated_seq)
    }

    /// Incorporates one batch's delta and reports breaks/appearances.
    pub fn observe(&mut self, result: &BatchResult) -> MonitorReport {
        self.batch_no += 1;
        let mut report = MonitorReport {
            recovered: result.metrics.cover_rebuilds > 0,
            ..MonitorReport::default()
        };
        self.recoveries += result.metrics.cover_rebuilds as u64;
        self.wal_bytes += result.metrics.wal_bytes as u64;
        self.fsyncs += result.metrics.fsyncs as u64;
        self.replayed_batches += result.metrics.recovery_replayed_batches as u64;
        self.last_truncated_seq = self
            .last_truncated_seq
            .max(result.metrics.last_truncated_seq);
        for &fd in &result.removed {
            let entry = self.stats.entry(fd).or_default();
            let age = entry.present_since.map_or(0, |s| self.batch_no - 1 - s);
            entry.present_since = None;
            entry.flips += 1;
            report.broken.push((fd, age));
        }
        for &fd in &result.added {
            let entry = self.stats.entry(fd).or_default();
            let reappearance = entry.flips > 0;
            entry.present_since = Some(self.batch_no);
            entry.flips += 1;
            report.appeared.push((fd, reappearance));
        }
        // Age accounting for everything still present.
        for stats in self.stats.values_mut() {
            if stats.present_since.is_some() {
                stats.batches_present += 1;
            }
        }
        report.broken.sort();
        report.appeared.sort();
        report
    }

    /// Current age (consecutive batches present) of `fd`; `None` if it
    /// does not hold right now.
    pub fn age(&self, fd: &Fd) -> Option<u64> {
        self.stats
            .get(fd)
            .and_then(|s| s.present_since)
            .map(|s| self.batch_no - s)
    }

    /// How often `fd` changed status (appeared or disappeared).
    pub fn flip_count(&self, fd: &Fd) -> u32 {
        self.stats.get(fd).map_or(0, |s| s.flips)
    }

    /// All currently-holding FDs with age ≥ `min_age`, sorted — the
    /// *robust* dependencies worth acting on (schema design, constraint
    /// candidates).
    pub fn robust_fds(&self, min_age: u64) -> Vec<Fd> {
        let mut out: Vec<Fd> = self
            .stats
            .iter()
            .filter(|(_, s)| {
                s.present_since
                    .is_some_and(|since| self.batch_no - since >= min_age)
            })
            .map(|(&fd, _)| fd)
            .collect();
        out.sort();
        out
    }

    /// All FDs (holding or not) that flipped status at least
    /// `min_flips` times — the *flickering* dependencies whose change
    /// pattern is itself a signal (paper Section 1).
    pub fn volatile_fds(&self, min_flips: u32) -> Vec<Fd> {
        let mut out: Vec<Fd> = self
            .stats
            .iter()
            .filter(|(_, s)| s.flips >= min_flips)
            .map(|(&fd, _)| fd)
            .collect();
        out.sort();
        out
    }

    /// Fraction of observed batches during which `fd` held — a simple
    /// interestingness/stability score in `[0, 1]`.
    pub fn stability(&self, fd: &Fd) -> f64 {
        if self.batch_no == 0 {
            return if self.age(fd).is_some() { 1.0 } else { 0.0 };
        }
        self.stats
            .get(fd)
            .map_or(0.0, |s| s.batches_present as f64 / self.batch_no as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::AttrSet;

    fn fd(lhs: &[usize], rhs: usize) -> Fd {
        Fd::new(lhs.iter().copied().collect::<AttrSet>(), rhs)
    }

    fn result(added: &[Fd], removed: &[Fd]) -> BatchResult {
        BatchResult {
            added: added.to_vec(),
            removed: removed.to_vec(),
            metrics: Default::default(),
        }
    }

    #[test]
    fn ages_accumulate_until_broken() {
        let a = fd(&[1], 0);
        let mut m = FdMonitor::new(&[a]);
        m.observe(&result(&[], &[]));
        m.observe(&result(&[], &[]));
        assert_eq!(m.age(&a), Some(2));
        let report = m.observe(&result(&[], &[a]));
        assert_eq!(report.broken, vec![(a, 2)]);
        assert_eq!(m.age(&a), None);
    }

    #[test]
    fn reappearance_is_flagged() {
        let a = fd(&[1], 0);
        let mut m = FdMonitor::new(&[]);
        let r = m.observe(&result(&[a], &[]));
        assert_eq!(r.appeared, vec![(a, false)]);
        m.observe(&result(&[], &[a]));
        let r = m.observe(&result(&[a], &[]));
        assert_eq!(
            r.appeared,
            vec![(a, true)],
            "second appearance is a re-appearance"
        );
        assert_eq!(m.flip_count(&a), 3);
    }

    #[test]
    fn robust_and_volatile_queries() {
        let stable = fd(&[1], 0);
        let flicker = fd(&[2], 0);
        let mut m = FdMonitor::new(&[stable]);
        for i in 0..6 {
            if i % 2 == 0 {
                m.observe(&result(&[flicker], &[]));
            } else {
                m.observe(&result(&[], &[flicker]));
            }
        }
        assert_eq!(m.robust_fds(5), vec![stable]);
        assert_eq!(m.volatile_fds(4), vec![flicker]);
        assert!(m.stability(&stable) > 0.99);
        assert!(m.stability(&flicker) < 0.6);
    }

    #[test]
    fn initial_fds_have_age_zero_and_full_stability() {
        let a = fd(&[1], 0);
        let m = FdMonitor::new(&[a]);
        assert_eq!(m.age(&a), Some(0));
        assert_eq!(m.stability(&a), 1.0);
        assert_eq!(m.batches_observed(), 0);
    }

    #[test]
    fn wal_counters_accumulate() {
        let mut m = FdMonitor::new(&[]);
        assert_eq!(m.wal_bytes(), 0);
        assert_eq!(m.last_truncated_seq(), None);
        let mut r = result(&[], &[]);
        r.metrics.wal_bytes = 120;
        r.metrics.fsyncs = 2;
        r.metrics.recovery_replayed_batches = 4;
        r.metrics.last_truncated_seq = 9;
        m.observe(&r);
        let mut r2 = result(&[], &[]);
        r2.metrics.wal_bytes = 30;
        r2.metrics.fsyncs = 1;
        r2.metrics.last_truncated_seq = 3;
        m.observe(&r2);
        assert_eq!(m.wal_bytes(), 150);
        assert_eq!(m.fsync_count(), 3);
        assert_eq!(m.recovery_replayed_batches(), 4);
        assert_eq!(m.last_truncated_seq(), Some(9));
    }

    #[test]
    fn unknown_fd_queries() {
        let m = FdMonitor::new(&[]);
        let ghost = fd(&[3], 1);
        assert_eq!(m.age(&ghost), None);
        assert_eq!(m.flip_count(&ghost), 0);
        assert_eq!(m.stability(&ghost), 0.0);
    }
}
