//! PLI-based FD candidate validation (paper Sections 3.1 and 4.2).
//!
//! The validator implements the classic HyFD validation scheme on top of
//! the incremental substrate:
//!
//! * the PLI of one *pivot* LHS attribute indexes sets of tuples;
//! * within each pivot cluster, records are grouped by their remaining
//!   LHS value codes (a lazy PLI intersection);
//! * members of a group are checked against the RHS attribute codes —
//!   two group members with different RHS codes are a violation;
//! * all RHS candidates sharing the LHS are validated **simultaneously**
//!   in one pass;
//! * validation of an RHS **terminates early** at its first violation.
//!
//! On top of this, the dynamic setting adds *cluster pruning*
//! (Section 4.2): when validating a previously-valid FD after a batch of
//! inserts, every pair of old records still satisfies the FD, so only
//! pivot clusters containing at least one newly inserted record need to
//! be checked. Because surrogate ids increase monotonically and clusters
//! are sorted, "contains a new record" is the O(1) test
//! `cluster.last() >= first_id_of_batch`.

use crate::dictionary::ValueId;
use crate::pli_cache::{CacheEffects, CachedPartition, PliCacheSnapshot};
use crate::relation::DynamicRelation;
use dynfd_common::{AttrId, AttrSet, Fd, RecordId};
use std::collections::HashMap;
use std::sync::Arc;

/// Knobs for a validation call.
#[derive(Clone, Copy, Debug, Default)]
pub struct ValidationOptions {
    /// Cluster-pruning watermark: if set, pivot clusters whose largest
    /// record id is below this are skipped. **Only sound when every
    /// record pair below the watermark is known to satisfy the candidate
    /// already** — i.e. when re-validating FDs that were valid before the
    /// current batch of inserts (Section 4.2).
    pub min_new_id: Option<RecordId>,
}

impl ValidationOptions {
    /// No pruning: validate against the entire relation.
    pub fn full() -> Self {
        ValidationOptions { min_new_id: None }
    }

    /// Cluster pruning against records inserted at or after `first_new`.
    pub fn delta(first_new: RecordId) -> Self {
        ValidationOptions {
            min_new_id: Some(first_new),
        }
    }
}

/// Per-RHS validation verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RhsOutcome {
    /// No violating pair found: `lhs -> rhs` holds.
    Valid,
    /// The two records disagree on the RHS while agreeing on the LHS.
    /// The pair doubles as the *surrogate violation* cached by DynFD's
    /// validation pruning (Section 5.2).
    Violated(RecordId, RecordId),
}

impl RhsOutcome {
    /// Whether the candidate was found valid.
    pub fn is_valid(&self) -> bool {
        matches!(self, RhsOutcome::Valid)
    }
}

/// Counters describing the work one validation call performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidationStats {
    /// Pivot clusters actually grouped and checked.
    pub clusters_visited: usize,
    /// Pivot clusters skipped by cluster pruning.
    pub clusters_pruned: usize,
    /// Pivot clusters skipped because they were singletons.
    pub singletons_skipped: usize,
    /// Record-to-representative comparisons performed.
    pub comparisons: usize,
}

impl ValidationStats {
    /// Accumulates another call's counters into this one.
    pub fn absorb(&mut self, other: &ValidationStats) {
        self.clusters_visited += other.clusters_visited;
        self.clusters_pruned += other.clusters_pruned;
        self.singletons_skipped += other.singletons_skipped;
        self.comparisons += other.comparisons;
    }
}

/// Result of validating all FDs `lhs -> r` for `r ∈ rhs_set`.
#[derive(Clone, Debug)]
pub struct ValidationResult {
    /// The shared left-hand side.
    pub lhs: AttrSet,
    /// One verdict per requested RHS, ascending by attribute id.
    pub outcomes: Vec<(AttrId, RhsOutcome)>,
    /// Work counters.
    pub stats: ValidationStats,
}

impl ValidationResult {
    /// The verdict for a specific RHS.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` was not part of the validated set.
    pub fn outcome(&self, rhs: AttrId) -> RhsOutcome {
        self.outcomes
            .iter()
            .find(|(r, _)| *r == rhs)
            .map(|(_, o)| *o)
            .expect("rhs was not validated")
    }

    /// Whether every requested RHS turned out valid.
    pub fn all_valid(&self) -> bool {
        self.outcomes.iter().all(|(_, o)| o.is_valid())
    }

    /// Iterates the RHS attributes that were found violated, with their
    /// violating pairs.
    pub fn violations(&self) -> impl Iterator<Item = (AttrId, RecordId, RecordId)> + '_ {
        self.outcomes.iter().filter_map(|(r, o)| match o {
            RhsOutcome::Violated(a, b) => Some((*r, *a, *b)),
            RhsOutcome::Valid => None,
        })
    }
}

/// Reusable working memory for [`validate_with`].
///
/// A validation call needs a per-cluster group map (the lazy PLI
/// intersection), a key buffer, and an attribute→outcome-slot index.
/// Allocating these per call dominates the cost of validating the many
/// small candidates of a lattice level; threading one scratch through a
/// whole level (or one per worker thread) makes the steady state
/// allocation-free.
#[derive(Clone, Debug, Default)]
pub struct ValidatorScratch {
    /// Group map for ≥3 remaining LHS attributes, keyed by the value
    /// codes of the remaining attributes.
    groups_wide: HashMap<Vec<ValueId>, RecordId>,
    /// Group map for 1–2 remaining LHS attributes, keyed by the codes
    /// packed into a single `u64` — no per-record `Vec` allocation.
    groups_packed: HashMap<u64, RecordId>,
    /// Reused key buffer for the wide path: a fresh `Vec` is only
    /// allocated when a new group is actually inserted.
    key_buf: Vec<ValueId>,
    /// `slot_of_attr[r]` is the index of RHS attribute `r` in the
    /// current call's `outcomes`, replacing linear scans per violation.
    slot_of_attr: Vec<u32>,
}

impl ValidatorScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        ValidatorScratch::default()
    }
}

/// Packs the remaining-LHS value codes of `rec` into one `u64` key
/// (callable only when at most two attributes remain).
#[inline]
fn packed_key(rest: &[AttrId], rec: &[ValueId]) -> u64 {
    debug_assert!((1..=2).contains(&rest.len()));
    let hi = rec[rest[0]] as u64;
    let lo = if rest.len() == 2 {
        rec[rest[1]] as u64
    } else {
        0
    };
    hi << 32 | lo
}

/// Validates the FD candidates `lhs -> r` for every `r ∈ rhs_set`
/// simultaneously against `rel`.
///
/// Convenience wrapper over [`validate_with`] that allocates a fresh
/// [`ValidatorScratch`]; hot paths validating many candidates should
/// reuse one scratch instead.
///
/// # Panics
///
/// Panics if `rhs_set` intersects `lhs` (trivial candidates) or is empty.
pub fn validate(
    rel: &DynamicRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    opts: &ValidationOptions,
) -> ValidationResult {
    validate_with(rel, lhs, rhs_set, opts, &mut ValidatorScratch::new())
}

/// [`validate`] with caller-provided working memory.
///
/// Behaviour and outputs are identical to [`validate`]; only the
/// allocation profile differs.
///
/// # Panics
///
/// Panics if `rhs_set` intersects `lhs` (trivial candidates) or is empty.
pub fn validate_with(
    rel: &DynamicRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    opts: &ValidationOptions,
    scratch: &mut ValidatorScratch,
) -> ValidationResult {
    assert!(!rhs_set.is_empty(), "validate called with no RHS");
    assert!(lhs.is_disjoint(&rhs_set), "trivial candidate: rhs ∈ lhs");

    if lhs.is_empty() {
        return validate_empty_lhs(rel, rhs_set);
    }

    let mut stats = ValidationStats::default();
    let mut outcomes: Vec<(AttrId, RhsOutcome)> =
        rhs_set.iter().map(|r| (r, RhsOutcome::Valid)).collect();
    let mut active = rhs_set;
    prepare_slots(scratch, rel.arity(), &outcomes);

    // Pivot: the LHS attribute whose PLI has the smallest maximal
    // cluster — the most refined single-attribute partition, giving the
    // smallest groups to intersect. Ties break towards the smaller
    // attribute id for determinism.
    let pivot = lhs
        .iter()
        .min_by_key(|&a| (rel.pli(a).max_cluster_len(), a))
        .expect("non-empty lhs");
    let rest: Vec<AttrId> = lhs.iter().filter(|&a| a != pivot).collect();
    let rhs_attrs: Vec<AttrId> = rhs_set.to_vec();

    scan_clusters(
        rel,
        rel.pli(pivot).iter().map(|(_, c)| c),
        &rest,
        &rhs_attrs,
        opts,
        scratch,
        &mut outcomes,
        &mut active,
        &mut stats,
    );

    ValidationResult {
        lhs,
        outcomes,
        stats,
    }
}

/// Validates `lhs -> r` for every `r ∈ rhs_set`, pivoting on the most
/// refined *available* partition: the best cached intersection from
/// `cache` covering a 2-subset of the LHS, or the best single-attribute
/// PLI when no cached entry beats it (paper-lineage heuristic; see the
/// [`crate::pli_cache`] module docs).
///
/// Returns the validation result plus the [`CacheEffects`] the caller
/// must merge back into the owning [`crate::PliCache`] at the level
/// barrier:
///
/// * probing the snapshot and pivoting on a cached entry records a
///   *hit*;
/// * probing with no cached subset records a *miss* — and, when the
///   validation is unpruned, the intersection the validator builds for
///   the LHS's two most refined attributes is handed back for caching.
///   Cluster-pruned calls ([`ValidationOptions::delta`]) never build:
///   they touch only clusters containing new records, so paying a full
///   O(n) build there would invert the optimization.
///
/// Verdicts are identical to [`validate_with`] per RHS; only the
/// violating *witness pairs* (and the work counters) may differ, because
/// a different pivot scans clusters in a different order and early
/// termination stops at the first violation it meets.
///
/// # Panics
///
/// Panics if `rhs_set` intersects `lhs` (trivial candidates) or is empty.
pub fn validate_cached(
    rel: &DynamicRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    opts: &ValidationOptions,
    scratch: &mut ValidatorScratch,
    cache: &PliCacheSnapshot,
) -> (ValidationResult, CacheEffects) {
    let mut effects = CacheEffects::default();
    if lhs.len() < 2 {
        // Single-attribute (or empty) LHS: the PLI itself is the
        // partition; the cache stores only 2-attribute intersections.
        return (validate_with(rel, lhs, rhs_set, opts, scratch), effects);
    }
    assert!(!rhs_set.is_empty(), "validate called with no RHS");
    assert!(lhs.is_disjoint(&rhs_set), "trivial candidate: rhs ∈ lhs");

    // Probe every 2-subset of the LHS; keep the most refined cached
    // partition (smallest maximal cluster, key order breaking ties).
    let attrs = lhs.to_vec();
    let mut best: Option<(AttrSet, &Arc<CachedPartition>)> = None;
    for (i, &a) in attrs.iter().enumerate() {
        for &b in &attrs[i + 1..] {
            let key = AttrSet::from_iter([a, b]);
            if let Some(part) = cache.get(&key) {
                let better = match best {
                    None => true,
                    Some((bk, bp)) => (part.max_cluster_len(), key) < (bp.max_cluster_len(), bk),
                };
                if better {
                    best = Some((key, part));
                }
            }
        }
    }

    let best_single = attrs
        .iter()
        .map(|&a| rel.pli(a).max_cluster_len())
        .min()
        .expect("non-empty lhs");
    match best {
        Some((key, part)) if part.max_cluster_len() <= best_single => {
            effects.hit = Some(key);
            let result = validate_on_partition(rel, lhs, rhs_set, key, part, opts, scratch);
            (result, effects)
        }
        // A cached subset exists but some single-attribute PLI is more
        // refined: the plain pivot heuristic wins; neither hit nor miss.
        Some(_) => (validate_with(rel, lhs, rhs_set, opts, scratch), effects),
        None => {
            effects.miss = true;
            if opts.min_new_id.is_some() {
                return (validate_with(rel, lhs, rhs_set, opts, scratch), effects);
            }
            // Build the intersection of the LHS's two most refined
            // attributes, validate on it directly (the build *is* the
            // grouping work), and offer it to the cache.
            let mut pair = attrs;
            pair.sort_unstable_by_key(|&a| (rel.pli(a).max_cluster_len(), a));
            let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            let part = Arc::new(CachedPartition::build(rel, a, b));
            let key = part.key();
            let result = validate_on_partition(rel, lhs, rhs_set, key, &part, opts, scratch);
            effects.built = Some((key, part));
            (result, effects)
        }
    }
}

/// Shared core of [`validate_cached`]'s hit/build paths: scan the
/// cached partition's clusters, refining by the LHS attributes outside
/// the cached key.
fn validate_on_partition(
    rel: &DynamicRelation,
    lhs: AttrSet,
    rhs_set: AttrSet,
    key: AttrSet,
    part: &CachedPartition,
    opts: &ValidationOptions,
    scratch: &mut ValidatorScratch,
) -> ValidationResult {
    let mut stats = ValidationStats::default();
    let mut outcomes: Vec<(AttrId, RhsOutcome)> =
        rhs_set.iter().map(|r| (r, RhsOutcome::Valid)).collect();
    let mut active = rhs_set;
    prepare_slots(scratch, rel.arity(), &outcomes);

    // Singletons were stripped at build/patch time; account for them
    // without iterating (each is one skipped one-record cluster).
    stats.singletons_skipped += part.singleton_count();
    let rest: Vec<AttrId> = lhs.difference(&key).to_vec();
    let rhs_attrs: Vec<AttrId> = rhs_set.to_vec();

    scan_clusters(
        rel,
        part.clusters(),
        &rest,
        &rhs_attrs,
        opts,
        scratch,
        &mut outcomes,
        &mut active,
        &mut stats,
    );

    ValidationResult {
        lhs,
        outcomes,
        stats,
    }
}

/// Sizes and fills `scratch.slot_of_attr` so that violations resolve
/// their outcome slot in O(1) (`outcomes` is ascending by attribute id).
fn prepare_slots(scratch: &mut ValidatorScratch, arity: usize, outcomes: &[(AttrId, RhsOutcome)]) {
    if scratch.slot_of_attr.len() < arity {
        scratch.slot_of_attr.resize(arity, u32::MAX);
    }
    for (i, &(r, _)) in outcomes.iter().enumerate() {
        scratch.slot_of_attr[r] = i as u32;
    }
}

/// The validation inner loop, shared by every pivot source: scans the
/// pivot `clusters` (from a single-attribute PLI or a cached
/// intersection), groups each cluster by the `rest` value codes — the
/// lazy PLI intersection — and compares group members against their
/// representative on every still-active RHS. Terminates as soon as all
/// RHS attributes are resolved.
#[allow(clippy::too_many_arguments)]
fn scan_clusters<'r>(
    rel: &DynamicRelation,
    clusters: impl Iterator<Item = &'r [RecordId]>,
    rest: &[AttrId],
    rhs_attrs: &[AttrId],
    opts: &ValidationOptions,
    scratch: &mut ValidatorScratch,
    outcomes: &mut [(AttrId, RhsOutcome)],
    active: &mut AttrSet,
    stats: &mut ValidationStats,
) {
    let slot_of_attr = &scratch.slot_of_attr;

    // Compares `rec` against its group representative's record on every
    // still-active RHS; returns true when every RHS has been resolved
    // (i.e. the caller can stop scanning entirely).
    macro_rules! compare {
        ($rep:expr, $rid:expr, $rep_rec:expr, $rec:expr) => {{
            stats.comparisons += 1;
            let mut done = false;
            for &r in rhs_attrs {
                if active.contains(r) && $rep_rec[r] != $rec[r] {
                    active.remove(r);
                    outcomes[slot_of_attr[r] as usize].1 = RhsOutcome::Violated($rep, $rid);
                    if active.is_empty() {
                        done = true;
                        break;
                    }
                }
            }
            done
        }};
    }

    'clusters: for cluster in clusters {
        if cluster.len() < 2 {
            stats.singletons_skipped += 1;
            continue;
        }
        if let Some(min_new) = opts.min_new_id {
            // Sorted cluster: the last element is the maximum id.
            if *cluster.last().expect("non-empty cluster") < min_new {
                stats.clusters_pruned += 1;
                continue;
            }
        }
        stats.clusters_visited += 1;
        if rest.is_empty() {
            // Fast path for single-attribute LHS — the bulk of a typical
            // positive cover: every cluster member shares the (empty)
            // remaining-LHS key, so the group map degenerates to
            // "compare everyone against the first member".
            let rep = cluster[0];
            let rep_rec = rel.compressed(rep).expect("live representative");
            for &rid in &cluster[1..] {
                let rec = rel.compressed(rid).expect("PLI references live record");
                if compare!(rep, rid, rep_rec, rec) {
                    break 'clusters;
                }
            }
        } else if rest.len() <= 2 {
            // Packed path: the remaining-LHS key fits one u64, so
            // grouping allocates nothing at all.
            let groups = &mut scratch.groups_packed;
            groups.clear();
            for &rid in cluster {
                let rec = rel.compressed(rid).expect("PLI references live record");
                match groups.entry(packed_key(rest, rec)) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(rid);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let rep = *e.get();
                        let rep_rec = rel.compressed(rep).expect("live representative");
                        if compare!(rep, rid, rep_rec, rec) {
                            break 'clusters;
                        }
                    }
                }
            }
        } else {
            // Wide path: key is the remaining-LHS code vector. The key
            // is built in a reused buffer and only cloned into an owned
            // `Vec` when a *new* group appears.
            let groups = &mut scratch.groups_wide;
            groups.clear();
            for &rid in cluster {
                let rec = rel.compressed(rid).expect("PLI references live record");
                scratch.key_buf.clear();
                scratch.key_buf.extend(rest.iter().map(|&a| rec[a]));
                if let Some(&rep) = groups.get(scratch.key_buf.as_slice()) {
                    let rep_rec = rel.compressed(rep).expect("live representative");
                    if compare!(rep, rid, rep_rec, rec) {
                        break 'clusters;
                    }
                } else {
                    groups.insert(scratch.key_buf.clone(), rid);
                }
            }
        }
    }
}

/// `∅ -> A` holds iff column A is constant over the live records; the
/// per-column PLI answers this in O(1) via its cluster count.
fn validate_empty_lhs(rel: &DynamicRelation, rhs_set: AttrSet) -> ValidationResult {
    let outcomes = rhs_set
        .iter()
        .map(|r| {
            let pli = rel.pli(r);
            let outcome = if pli.cluster_count() <= 1 {
                RhsOutcome::Valid
            } else {
                // At least two clusters exist: pick one witness from each.
                let mut it = pli.iter();
                let (_, c1) = it.next().expect("first cluster");
                let (_, c2) = it.next().expect("second cluster");
                RhsOutcome::Violated(c1[0], c2[0])
            };
            (r, outcome)
        })
        .collect();
    ValidationResult {
        lhs: AttrSet::empty(),
        outcomes,
        stats: ValidationStats::default(),
    }
}

/// Convenience wrapper validating a single [`Fd`].
pub fn validate_fd(rel: &DynamicRelation, fd: &Fd, opts: &ValidationOptions) -> RhsOutcome {
    validate(rel, fd.lhs, AttrSet::single(fd.rhs), opts).outcome(fd.rhs)
}

/// The *agree set* of two records: all attributes on which they hold the
/// same value. For any attribute `y` outside the agree set `X`, the pair
/// witnesses the non-FD `X -> y` (paper Section 4.3).
pub fn agree_set(rel: &DynamicRelation, a: RecordId, b: RecordId) -> Option<AttrSet> {
    let ra = rel.compressed(a)?;
    let rb = rel.compressed(b)?;
    let mut set = AttrSet::empty();
    for (attr, (x, y)) in ra.iter().zip(rb.iter()).enumerate() {
        if x == y {
            set.insert(attr);
        }
    }
    Some(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynfd_common::Schema;

    fn rel(rows: &[&[&str]]) -> DynamicRelation {
        let arity = rows.first().map_or(2, |r| r.len());
        let schema = Schema::anonymous("t", arity);
        let rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect();
        DynamicRelation::from_rows(schema, &rows).unwrap()
    }

    fn paper() -> DynamicRelation {
        rel(&[
            &["Max", "Jones", "14482", "Potsdam"],
            &["Max", "Miller", "14482", "Potsdam"],
            &["Max", "Jones", "10115", "Berlin"],
            &["Anna", "Scott", "13591", "Berlin"],
        ])
    }

    fn lhs(attrs: &[usize]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    #[test]
    fn paper_minimal_fds_hold_initially() {
        // Figure 2: l→f, z→f, z→c, fc→z, lc→z are the minimal FDs.
        let r = paper();
        let full = ValidationOptions::full();
        for (x, a) in [
            (lhs(&[1]), 0),    // l -> f
            (lhs(&[2]), 0),    // z -> f
            (lhs(&[2]), 3),    // z -> c
            (lhs(&[0, 3]), 2), // fc -> z
            (lhs(&[1, 3]), 2), // lc -> z
        ] {
            assert!(
                validate_fd(&r, &Fd::new(x, a), &full).is_valid(),
                "{x:?}->{a} should hold"
            );
        }
    }

    #[test]
    fn paper_non_fds_are_violated() {
        // Figure 2 red cells: f→c, c→f, fl→z, ... are invalid initially.
        let r = paper();
        let full = ValidationOptions::full();
        for (x, a) in [
            (lhs(&[0]), 3),       // f -> c
            (lhs(&[3]), 0),       // c -> f
            (lhs(&[0, 1]), 2),    // fl -> z
            (lhs(&[0, 1]), 3),    // fl -> c
            (lhs(&[0, 2, 3]), 1), // fzc -> l
        ] {
            let out = validate_fd(&r, &Fd::new(x, a), &full);
            assert!(!out.is_valid(), "{x:?}->{a} should be violated");
        }
    }

    #[test]
    fn violating_pair_actually_violates() {
        let r = paper();
        let out = validate_fd(&r, &Fd::new(lhs(&[0]), 3), &ValidationOptions::full());
        let RhsOutcome::Violated(a, b) = out else {
            panic!("expected violation")
        };
        let ra = r.compressed(a).unwrap();
        let rb = r.compressed(b).unwrap();
        assert_eq!(ra[0], rb[0], "pair must agree on lhs");
        assert_ne!(ra[3], rb[3], "pair must disagree on rhs");
    }

    #[test]
    fn simultaneous_rhs_validation() {
        let r = paper();
        // lhs = {zip}: zip -> firstname valid, zip -> lastname invalid,
        // zip -> city valid.
        let res = validate(&r, lhs(&[2]), lhs(&[0, 1, 3]), &ValidationOptions::full());
        assert!(res.outcome(0).is_valid());
        assert!(!res.outcome(1).is_valid());
        assert!(res.outcome(3).is_valid());
        assert_eq!(res.violations().count(), 1);
    }

    #[test]
    fn empty_lhs_constant_column() {
        let r = rel(&[&["x", "1"], &["x", "2"], &["x", "2"]]);
        let res = validate(
            &r,
            AttrSet::empty(),
            lhs(&[0, 1]),
            &ValidationOptions::full(),
        );
        assert!(res.outcome(0).is_valid(), "column 0 constant");
        assert!(!res.outcome(1).is_valid(), "column 1 varies");
        let RhsOutcome::Violated(a, b) = res.outcome(1) else {
            panic!()
        };
        assert_ne!(r.compressed(a).unwrap()[1], r.compressed(b).unwrap()[1]);
    }

    #[test]
    fn tiny_relations_satisfy_everything() {
        let empty = DynamicRelation::new(Schema::anonymous("t", 3));
        let res = validate(&empty, lhs(&[0]), lhs(&[1, 2]), &ValidationOptions::full());
        assert!(res.all_valid());

        let one = rel(&[&["a", "b", "c"]]);
        assert!(validate(&one, lhs(&[0]), lhs(&[1]), &ValidationOptions::full()).all_valid());
        assert!(validate(
            &one,
            AttrSet::empty(),
            lhs(&[0]),
            &ValidationOptions::full()
        )
        .all_valid());
    }

    #[test]
    fn cluster_pruning_skips_old_clusters() {
        let mut r = paper();
        // Insert a record whose firstname "Anna" joins record 3's cluster.
        r.insert_row(&["Anna", "Scott", "13591", "Berlin"]).unwrap();
        // Validate f -> c with pruning: the Max cluster {0,1,2} is old
        // (max id 2 < 4) and must be skipped even though it violates.
        let res = validate(
            &r,
            lhs(&[0]),
            AttrSet::single(3),
            &ValidationOptions::delta(RecordId(4)),
        );
        assert_eq!(res.stats.clusters_pruned, 1);
        assert_eq!(res.stats.clusters_visited, 1);
        // The Anna cluster is consistent, so under pruning the FD looks
        // valid — which is the *intended* semantics: pruning is only used
        // on candidates known valid over the old records.
        assert!(res.outcome(3).is_valid());
    }

    #[test]
    fn cluster_pruning_still_sees_new_violations() {
        let mut r = paper();
        let first_new = r.next_id();
        // New record violates z -> c: shares zip 14482 with ids 0,1 but
        // has a different city.
        r.insert_row(&["Eve", "Stone", "14482", "Leipzig"]).unwrap();
        let res = validate(
            &r,
            lhs(&[2]),
            AttrSet::single(3),
            &ValidationOptions::delta(first_new),
        );
        let RhsOutcome::Violated(a, b) = res.outcome(3) else {
            panic!("z -> c must be violated by the insert")
        };
        assert!(
            a == RecordId(4) || b == RecordId(4),
            "violation involves the new record"
        );
    }

    #[test]
    fn early_termination_counts_less_work() {
        // Column 1 mirrors column 0 except everywhere-different column 2.
        let rows: Vec<Vec<String>> = (0..100)
            .map(|i| {
                vec![
                    format!("g{}", i / 10),
                    format!("h{}", i / 10),
                    format!("u{i}"),
                ]
            })
            .collect();
        let r = DynamicRelation::from_rows(Schema::anonymous("t", 3), &rows).unwrap();
        // lhs {0} -> rhs {2}: every cluster violates immediately.
        let res = validate(
            &r,
            lhs(&[0]),
            AttrSet::single(2),
            &ValidationOptions::full(),
        );
        assert!(!res.outcome(2).is_valid());
        // Early termination: at most one comparison needed.
        assert_eq!(res.stats.comparisons, 1);
    }

    #[test]
    fn agree_sets() {
        let r = paper();
        // Records 0 and 1: agree on firstname, zip, city; differ lastname.
        assert_eq!(
            agree_set(&r, RecordId(0), RecordId(1)).unwrap().to_vec(),
            vec![0, 2, 3]
        );
        // Records 0 and 3 share nothing.
        assert!(agree_set(&r, RecordId(0), RecordId(3)).unwrap().is_empty());
        // Self-agreement is everything.
        assert_eq!(agree_set(&r, RecordId(2), RecordId(2)).unwrap().len(), 4);
        // Dead record → None.
        assert_eq!(agree_set(&r, RecordId(0), RecordId(42)), None);
    }

    #[test]
    #[should_panic(expected = "trivial candidate")]
    fn trivial_candidate_panics() {
        let r = paper();
        let _ = validate(
            &r,
            lhs(&[0, 1]),
            AttrSet::single(0),
            &ValidationOptions::full(),
        );
    }

    /// Every arity-2/3 candidate over the paper relation gets the same
    /// verdicts from the cached path — on a cold snapshot (miss+build)
    /// and on the warm snapshot the merge produced (hit).
    #[test]
    fn cached_path_matches_plain_verdicts() {
        use crate::pli_cache::PliCache;

        let r = paper();
        let full = ValidationOptions::full();
        let mut scratch = ValidatorScratch::new();
        let mut cache = PliCache::new(usize::MAX);

        let mut candidates = Vec::new();
        for a in 0..4usize {
            for b in a + 1..4 {
                let x: AttrSet = [a, b].into_iter().collect();
                for c in 0..4 {
                    if !x.contains(c) {
                        candidates.push((x, AttrSet::single(c)));
                        candidates.push((x.with(c), AttrSet::full(4).difference(&x.with(c))));
                    }
                }
            }
        }
        let candidates: Vec<_> = candidates
            .into_iter()
            .filter(|(_, rhs)| !rhs.is_empty())
            .collect();

        for round in 0..2 {
            let snap = cache.snapshot();
            let mut effects = Vec::new();
            for &(x, rhs) in &candidates {
                let plain = validate_with(&r, x, rhs, &full, &mut scratch);
                let (cached, eff) = validate_cached(&r, x, rhs, &full, &mut scratch, &snap);
                for (attr, out) in &plain.outcomes {
                    assert_eq!(
                        cached.outcome(*attr).is_valid(),
                        out.is_valid(),
                        "round {round}: {x:?} -> {attr} verdict diverged"
                    );
                }
                // Any reported witness must genuinely violate.
                for (attr, a, b) in cached.violations() {
                    let ra = r.compressed(a).expect("live witness");
                    let rb = r.compressed(b).expect("live witness");
                    assert!(x.iter().all(|l| ra[l] == rb[l]), "witness agrees on lhs");
                    assert_ne!(ra[attr], rb[attr], "witness disagrees on rhs");
                }
                effects.push(eff);
            }
            if round == 0 {
                assert!(
                    effects.iter().any(|e| e.built.is_some()),
                    "cold run builds partitions"
                );
            } else {
                assert!(
                    effects.iter().any(|e| e.hit.is_some()),
                    "warm run hits the cache"
                );
                assert!(
                    effects.iter().all(|e| e.built.is_none()),
                    "warm run rebuilds nothing"
                );
            }
            cache.merge(&effects);
        }
        assert!(cache.stats().hits > 0 && cache.stats().misses > 0);
    }

    /// Cluster-pruned (insert-phase) validations probe but never build:
    /// the effects record a miss and no partition.
    #[test]
    fn cached_path_skips_build_under_pruning() {
        use crate::pli_cache::PliCache;

        let mut r = paper();
        let first_new = r.next_id();
        r.insert_row(&["Eve", "Stone", "14482", "Leipzig"]).unwrap();
        let cache = PliCache::new(usize::MAX);
        let snap = cache.snapshot();
        let (res, eff) = validate_cached(
            &r,
            lhs(&[0, 2]),
            AttrSet::single(3),
            &ValidationOptions::delta(first_new),
            &mut ValidatorScratch::new(),
            &snap,
        );
        assert!(eff.miss && eff.built.is_none() && eff.hit.is_none());
        // Same verdict as the plain pruned validation.
        let plain = validate(
            &r,
            lhs(&[0, 2]),
            AttrSet::single(3),
            &ValidationOptions::delta(first_new),
        );
        assert_eq!(res.outcome(3).is_valid(), plain.outcome(3).is_valid());
    }

    #[test]
    fn validation_after_deletes() {
        let mut r = paper();
        // f -> c is violated by (0,2). Delete record 2 → Max cluster all
        // Potsdam → f -> c becomes valid.
        r.delete_record(RecordId(2)).unwrap();
        assert!(validate_fd(&r, &Fd::new(lhs(&[0]), 3), &ValidationOptions::full()).is_valid());
    }
}
