//! HyFD: hybrid FD discovery [13].
//!
//! HyFD interleaves two discovery principles that are individually
//! incomplete but complementary (paper Section 7.1):
//!
//! 1. **Sampling** (row-based): compare *promising* record pairs —
//!    neighbors within PLI clusters under a similarity sort — to harvest
//!    agree sets cheaply. Each agree set contributes non-FDs to the
//!    negative cover. Sampling windows grow progressively and an
//!    attribute is abandoned when its efficiency (new non-FDs per
//!    comparison) drops below a threshold.
//! 2. **Validation** (column-based): induce the positive cover from the
//!    negative cover, then validate it level-wise against the PLIs.
//!    Violations yield new agree sets that refine both covers. If more
//!    than 10 % of a level turns out invalid, the traversal is deemed
//!    inefficient and HyFD switches back to sampling.
//!
//! DynFD bootstraps from this implementation (positive cover + the
//! shared PLI/compressed-record structures) and competes against its
//! repeated re-execution in the Figure 7 experiment.

mod sampler;
mod validator;

pub use sampler::Sampler;

use dynfd_lattice::{induce_from_negative_cover, FdTree};
use dynfd_relation::DynamicRelation;

/// Tuning knobs for HyFD. The defaults follow the paper ([13] and the
/// DynFD paper's hard-coded 10 % switching threshold).
#[derive(Clone, Copy, Debug)]
pub struct HyFdConfig {
    /// Sampling stops when the best attribute's efficiency (new non-FDs
    /// per comparison in its last round) falls below this.
    pub sampling_efficiency_threshold: f64,
    /// The lattice traversal switches back to sampling when the fraction
    /// of invalid FDs in a level exceeds this (0.1 in the papers).
    pub invalid_ratio_switch: f64,
}

impl Default for HyFdConfig {
    fn default() -> Self {
        HyFdConfig {
            sampling_efficiency_threshold: 0.01,
            invalid_ratio_switch: 0.1,
        }
    }
}

/// Work counters for one HyFD run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HyFdStats {
    /// Record-pair comparisons performed by the sampler.
    pub comparisons: usize,
    /// Candidate (lhs, rhs-set) validations performed.
    pub validations: usize,
    /// Sampling rounds executed (initial phase + switch-backs).
    pub sampling_rounds: usize,
    /// Times the validator switched back to sampling.
    pub switches: usize,
}

/// Result of [`discover_with`].
#[derive(Clone, Debug)]
pub struct HyFdOutput {
    /// The complete positive cover: all minimal, non-trivial FDs.
    pub fds: FdTree,
    /// Work counters.
    pub stats: HyFdStats,
}

/// Discovers all minimal, non-trivial FDs of `rel` with default tuning.
pub fn discover(rel: &DynamicRelation) -> FdTree {
    discover_with(rel, &HyFdConfig::default()).fds
}

/// Discovers all minimal, non-trivial FDs of `rel`.
pub fn discover_with(rel: &DynamicRelation, cfg: &HyFdConfig) -> HyFdOutput {
    let mut stats = HyFdStats::default();
    if rel.len() < 2 {
        return HyFdOutput {
            fds: crate::trivial_cover(rel),
            stats,
        };
    }

    // Phase 1: initial sampling builds a first negative cover.
    let mut neg = FdTree::new();
    let mut sampler = Sampler::new(rel);
    sampler.run(rel, &mut neg, cfg.sampling_efficiency_threshold, &mut stats);

    // Phase 2: induce candidates and validate level-wise, switching back
    // to sampling when the traversal becomes inefficient.
    let mut fds = induce_from_negative_cover(&neg, rel.arity());
    validator::validate_cover(rel, &mut fds, &mut neg, &mut sampler, cfg, &mut stats);

    HyFdOutput { fds, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{paper_relation, random_relation, rel};
    use dynfd_common::{AttrSet, Fd};

    fn s(attrs: &[usize]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    #[test]
    fn paper_example() {
        let fds = discover(&paper_relation());
        let expect: FdTree = [
            (s(&[1]), 0),
            (s(&[2]), 0),
            (s(&[2]), 3),
            (s(&[0, 3]), 2),
            (s(&[1, 3]), 2),
        ]
        .into_iter()
        .map(|(l, r)| Fd::new(l, r))
        .collect();
        assert_eq!(fds, expect);
    }

    #[test]
    fn agrees_with_tane_and_fdep_on_random_relations() {
        for seed in 0..10u64 {
            let r = random_relation(seed, 50, 6, 4);
            let h = discover(&r);
            let t = crate::tane::discover(&r);
            assert_eq!(h, t, "HyFD and TANE disagree on seed {seed}");
        }
    }

    #[test]
    fn degenerate_relations() {
        assert_eq!(discover(&rel(&[])).len(), 2);
        assert_eq!(discover(&rel(&[&["a", "b", "c"]])).len(), 3);
        // All-identical rows.
        let dup = rel(&[&["x", "y"], &["x", "y"], &["x", "y"]]);
        let fds = discover(&dup);
        assert!(fds.contains(AttrSet::empty(), 0));
        assert!(fds.contains(AttrSet::empty(), 1));
        // All-distinct single column.
        let key = rel(&[&["a"], &["b"], &["c"]]);
        assert!(discover(&key).is_empty());
    }

    #[test]
    fn stats_reflect_work() {
        let out = discover_with(&paper_relation(), &HyFdConfig::default());
        assert!(out.stats.comparisons > 0, "sampler must compare something");
        assert!(
            out.stats.validations > 0,
            "validator must validate something"
        );
        assert!(out.stats.sampling_rounds > 0);
    }

    #[test]
    fn sampling_disabled_still_correct() {
        // With an impossible efficiency threshold the sampler gives up
        // immediately and validation has to do all the work.
        let cfg = HyFdConfig {
            sampling_efficiency_threshold: f64::INFINITY,
            invalid_ratio_switch: 2.0,
        };
        for seed in 0..5u64 {
            let r = random_relation(seed + 7, 40, 5, 3);
            let out = discover_with(&r, &cfg);
            assert_eq!(out.fds, crate::tane::discover(&r), "seed {seed}");
        }
    }
}
