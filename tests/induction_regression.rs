//! Regression guard for the PR 1 insert-phase induction fix.
//!
//! Algorithm 2's literal specialization step extends an invalidated FD
//! along *every* attribute, including attributes the violating pair
//! agrees on — candidates the same pair is guaranteed to violate again.
//! On wide relations the resulting traversal ground through a candidate
//! powerset: the `single` profile (26 columns) scaled to 124 rows needed
//! **1,048,623** level validations for its first 60-op batch before the
//! fix, and **48** after (EXPERIMENTS.md, PR 1). This test replays that
//! exact scenario and pins the validation count via `BatchMetrics`, so a
//! reintroduced blowup fails fast instead of hanging the suite.

use dynfd::core::{DynFd, DynFdConfig};
use dynfd::datagen::{GeneratedDataset, PAPER_PROFILES};

/// Generous ceiling: ~100× the post-fix count, ~1/200 of the pre-fix
/// blowup. Legitimate algorithmic changes stay far below it; a
/// powerset-shaped regression blows straight through.
const VALIDATION_CEILING: usize = 5_000;

#[test]
fn single_profile_first_batch_validation_count_stays_bounded() {
    // The exact PR 1 scenario: `single` @ 0.01 scale = 124 initial rows,
    // 26 columns, first batch of 60 changes (insert-dominated, 96.1 %).
    let profile = PAPER_PROFILES
        .iter()
        .find(|p| p.name == "single")
        .expect("single profile exists")
        .scaled(0.01);
    assert_eq!(profile.initial_rows, 124, "scenario drifted");
    assert_eq!(profile.columns, 26, "scenario drifted");

    let data = GeneratedDataset::generate(&profile);
    let mut dynfd = DynFd::new(data.to_relation(), DynFdConfig::default());
    let batch = data
        .batches(60, Some(60))
        .into_iter()
        .next()
        .expect("profile has at least 60 changes");
    assert_eq!(batch.len(), 60);

    let result = dynfd.apply_batch(&batch).expect("batch applies");
    let jobs = result.metrics.validation_jobs();
    assert!(
        jobs <= VALIDATION_CEILING,
        "insert-phase induction regressed: {jobs} validation jobs \
         (fd: {}, non-fd: {}) for the single@124 first batch — \
         the PR 1 fix landed at 48, the pre-fix blowup at 1,048,623",
        result.metrics.fd_validations,
        result.metrics.non_fd_validations,
    );

    // The fix must not trade correctness for speed: the maintained cover
    // still matches static re-discovery (HyFD — TANE's level-wise sweep
    // is needlessly slow at 26 columns in debug builds).
    let oracle = dynfd::staticfd::hyfd::discover(dynfd.relation());
    assert_eq!(
        dynfd.positive_cover(),
        &oracle,
        "covers diverged on single@124 after batch 0"
    );
}

#[test]
fn wide_relation_single_batch_stays_bounded_at_both_pruning_corners() {
    // Narrower variant on the other PR 1 workload: the blowup was in the
    // shared insert phase, so both corners of the pruning matrix (all
    // optimizations on, all off) must stay bounded — running all 16
    // configurations on 83 columns would quadruple the suite's runtime
    // for no extra signal.
    let profile = PAPER_PROFILES
        .iter()
        .find(|p| p.name == "actor")
        .expect("actor profile exists")
        .scaled(0.01); // 83 columns, 36 rows
    let data = GeneratedDataset::generate(&profile);
    let batch = data
        .batches(20, Some(20))
        .into_iter()
        .next()
        .expect("profile has changes");

    for config in [DynFdConfig::default(), DynFdConfig::baseline()] {
        let mut dynfd = DynFd::new(data.to_relation(), config);
        let result = dynfd.apply_batch(&batch).expect("batch applies");
        let jobs = result.metrics.validation_jobs();
        assert!(
            jobs <= VALIDATION_CEILING,
            "config {}: {jobs} validation jobs on actor@36 (83 cols)",
            config.strategy_label()
        );
    }
}
