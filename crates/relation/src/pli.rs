//! Position list indexes (PLIs), a.k.a. stripped partitions.
//!
//! # Dense layout
//!
//! A PLI here is *dense* end to end, matching the columnar arena of
//! [`DynamicRelation`](crate::DynamicRelation):
//!
//! * Clusters hold `u32` **arena slots**, not record ids, so a validator
//!   can index `column[slot]` directly while streaming a cluster.
//! * All cluster members live in one backing `Vec<u32>` arena (`data`);
//!   a cluster is a `(start, len)` range into it, so there is no
//!   per-cluster `Vec` allocation and a cluster scan is one contiguous
//!   `u32` slice — sorted-merge intersections over two such slices
//!   autovectorize ([`intersect_clusters`]).
//! * The value-code → cluster map is a flat `heads` vector indexed by
//!   code (codes are dense, first-seen-ordered `u32`s), replacing the
//!   former `BTreeMap`. Iterating `heads` in index order reproduces the
//!   old map's ascending-code iteration order exactly, which keeps every
//!   downstream scan order — and with it witnesses and sampling — bit
//!   identical to the row-store layout.
//!
//! Cluster ranges are allocated from power-of-two size classes with
//! per-class free-lists: a cluster that outgrows its range relocates to
//! a range of twice the capacity and donates the old range to its class.
//! Ranges freed by emptied clusters are reused the same way, so heavy
//! churn cannot fragment the arena beyond a bounded factor (each class
//! holds at most the ranges ever allocated in it). The arena never
//! compacts — determinism is worth more than the slack, and the slack is
//! bounded by 2× live entries per class.
//!
//! Cluster members are kept sorted by **record id** (the occupying
//! record's id via `slot_rids`, not the slot number): record ids are
//! assigned monotonically, so an insert is an O(1) push, the last member
//! is the cluster's newest record — the O(1) *cluster pruning* test of
//! paper Section 4.2 — and scan order matches arrival order, which the
//! violation-witness contract depends on.

use crate::dictionary::ValueId;
use crate::kernel;
use dynfd_common::RecordId;

/// Sentinel in `heads` for "no cluster for this code".
const NONE: u32 = u32::MAX;

/// One cluster's range descriptor.
#[derive(Clone, Copy, Debug)]
struct ClusterMeta {
    /// The value code this cluster belongs to (needed to re-point
    /// `heads` when a swap-remove moves this descriptor).
    value: ValueId,
    /// Range start in the backing arena.
    start: u32,
    /// Number of live members.
    len: u32,
    /// Capacity class: the range spans `1 << class` slots.
    class: u8,
}

/// A position list index for one column (paper Section 3.1; also known
/// as a *stripped partition* in TANE).
///
/// For every value code, the PLI holds the *cluster* of arena slots
/// whose records carry that value in this column, sorted by record id
/// (see the module docs for the dense layout and its invariants).
///
/// Unlike a *stripped* partition, singleton clusters are retained: the
/// code → cluster map is exactly the paper's inverted index, which must
/// know about currently-unique values so that a later insert of the same
/// value lands in the right cluster. Consumers that want the stripped
/// view use [`Pli::iter_non_singleton`].
#[derive(Clone, Debug, Default)]
pub struct Pli {
    /// Value code → index into `meta`; [`NONE`] when the value has no
    /// live cluster. Indexed directly by code (codes are dense).
    heads: Vec<u32>,
    /// Active cluster descriptors (unordered; `heads` imposes order).
    meta: Vec<ClusterMeta>,
    /// The backing arena all cluster ranges carve up.
    data: Vec<u32>,
    /// Per-capacity-class free range starts (`free_ranges[c]` holds
    /// starts of free `1 << c`-slot ranges).
    free_ranges: Vec<Vec<u32>>,
    /// Number of slots across all clusters.
    entries: usize,
    /// Size of the largest cluster, maintained exactly (recomputed when
    /// a removal shrinks a maximal cluster). The validator's pivot
    /// heuristic reads this in O(1): the partition with the smallest
    /// maximal cluster is the most refined one and gives the cheapest
    /// group tables.
    max_len: usize,
}

impl Pli {
    /// Creates an empty PLI.
    pub fn new() -> Self {
        Pli::default()
    }

    /// Allocates a range of capacity `1 << class`, reusing a freed range
    /// of the same class when one exists.
    fn alloc_range(&mut self, class: u8) -> u32 {
        if let Some(list) = self.free_ranges.get_mut(class as usize) {
            if let Some(start) = list.pop() {
                return start;
            }
        }
        let start = self.data.len() as u32;
        self.data.resize(self.data.len() + (1usize << class), 0);
        start
    }

    /// Returns a freed range to its class free-list.
    fn free_range(&mut self, start: u32, class: u8) {
        if self.free_ranges.len() <= class as usize {
            self.free_ranges.resize_with(class as usize + 1, Vec::new);
        }
        self.free_ranges[class as usize].push(start);
    }

    /// Relocates cluster `idx` to a range of twice the capacity.
    fn grow_cluster(&mut self, idx: usize) {
        let ClusterMeta {
            start, len, class, ..
        } = self.meta[idx];
        let new_class = class + 1;
        let new_start = self.alloc_range(new_class);
        // Ranges are disjoint (the new one is freed or fresh), so a
        // straight copy_within is safe.
        self.data
            .copy_within(start as usize..(start + len) as usize, new_start as usize);
        self.free_range(start, class);
        self.meta[idx].start = new_start;
        self.meta[idx].class = new_class;
    }

    /// The `meta` index of `value`'s cluster, if live.
    #[inline]
    fn head(&self, value: ValueId) -> Option<usize> {
        match self.heads.get(value as usize) {
            Some(&idx) if idx != NONE => Some(idx as usize),
            _ => None,
        }
    }

    /// Creates a fresh singleton cluster for `value`.
    fn new_cluster(&mut self, value: ValueId, slot: u32) {
        let start = self.alloc_range(0);
        self.data[start as usize] = slot;
        let idx = self.meta.len() as u32;
        self.meta.push(ClusterMeta {
            value,
            start,
            len: 1,
            class: 0,
        });
        if self.heads.len() <= value as usize {
            self.heads.resize(value as usize + 1, NONE);
        }
        self.heads[value as usize] = idx;
    }

    /// Drops the (emptied) cluster `idx`, recycling its range and
    /// re-pointing `heads` around the swap-remove.
    fn drop_cluster(&mut self, idx: usize) {
        let dead = self.meta.swap_remove(idx);
        self.heads[dead.value as usize] = NONE;
        self.free_range(dead.start, dead.class);
        if idx < self.meta.len() {
            let moved_value = self.meta[idx].value;
            self.heads[moved_value as usize] = idx as u32;
        }
    }

    /// Adds `slot` (occupied by `rid`) to the cluster of `value`,
    /// creating the cluster if the value is new to this column.
    ///
    /// Record ids must be inserted in increasing order per cluster (they
    /// are surrogate keys assigned monotonically); this is
    /// debug-asserted via `slot_rids`.
    pub fn insert(&mut self, value: ValueId, slot: u32, rid: RecordId, slot_rids: &[RecordId]) {
        match self.head(value) {
            None => self.new_cluster(value, slot),
            Some(idx) => {
                let m = self.meta[idx];
                debug_assert!(
                    m.len == 0 || {
                        let last = self.data[(m.start + m.len - 1) as usize];
                        slot_rids[last as usize] < rid
                    },
                    "record ids must arrive in increasing order per cluster"
                );
                if m.len as usize == 1usize << m.class {
                    self.grow_cluster(idx);
                }
                let m = &mut self.meta[idx];
                self.data[(m.start + m.len) as usize] = slot;
                m.len += 1;
                self.max_len = self.max_len.max(m.len as usize);
            }
        }
        self.max_len = self.max_len.max(1);
        self.entries += 1;
    }

    /// Re-adds `slot` (occupied by `rid`) to the cluster of `value` at
    /// its rid-sorted position.
    ///
    /// Unlike [`Pli::insert`], this accepts ids below the cluster's
    /// current maximum: rollback of a failed batch restores records
    /// whose ids are older than surviving cluster members.
    pub fn restore(&mut self, value: ValueId, slot: u32, rid: RecordId, slot_rids: &[RecordId]) {
        let Some(idx) = self.head(value) else {
            self.new_cluster(value, slot);
            self.max_len = self.max_len.max(1);
            self.entries += 1;
            return;
        };
        let m = self.meta[idx];
        let range = &self.data[m.start as usize..(m.start + m.len) as usize];
        let Err(pos) = range.binary_search_by(|&s| slot_rids[s as usize].cmp(&rid)) else {
            return; // already present
        };
        if m.len as usize == 1usize << m.class {
            self.grow_cluster(idx);
        }
        let m = &mut self.meta[idx];
        let start = m.start as usize;
        self.data
            .copy_within(start + pos..start + m.len as usize, start + pos + 1);
        self.data[start + pos] = slot;
        m.len += 1;
        self.max_len = self.max_len.max(m.len as usize);
        self.entries += 1;
    }

    /// Removes the member occupied by `rid` from the cluster of `value`
    /// (located by binary search on record id through `slot_rids`; the
    /// caller must not have unmapped the slot yet). Emptied clusters are
    /// dropped from the index entirely (paper Section 3.1) and their
    /// range recycled.
    ///
    /// Returns `true` if the record was present.
    pub fn remove(
        &mut self,
        value: ValueId,
        slot: u32,
        rid: RecordId,
        slot_rids: &[RecordId],
    ) -> bool {
        let Some(idx) = self.head(value) else {
            return false;
        };
        let m = self.meta[idx];
        let range = &self.data[m.start as usize..(m.start + m.len) as usize];
        let Ok(pos) = range.binary_search_by(|&s| slot_rids[s as usize].cmp(&rid)) else {
            return false;
        };
        debug_assert_eq!(range[pos], slot, "slot map and cluster disagree for {rid}");
        let was_max = m.len as usize == self.max_len;
        let start = m.start as usize;
        self.data
            .copy_within(start + pos + 1..start + m.len as usize, start + pos);
        self.meta[idx].len -= 1;
        self.entries -= 1;
        if self.meta[idx].len == 0 {
            self.drop_cluster(idx);
        }
        if was_max {
            // The shrunk cluster may no longer be maximal; recompute so
            // the field stays exact. O(#clusters), only on the rare
            // shrink-from-max path.
            self.max_len = self.meta.iter().map(|m| m.len as usize).max().unwrap_or(0);
        }
        true
    }

    /// The cluster for `value` — a contiguous, rid-sorted slice of arena
    /// slots — if any record currently holds the value.
    #[inline]
    pub fn cluster(&self, value: ValueId) -> Option<&[u32]> {
        self.head(value).map(|idx| {
            let m = self.meta[idx];
            &self.data[m.start as usize..(m.start + m.len) as usize]
        })
    }

    /// Number of clusters (distinct live values).
    pub fn cluster_count(&self) -> usize {
        self.meta.len()
    }

    /// Size of the largest cluster (0 when empty). O(1): the value is
    /// maintained under inserts and removals.
    pub fn max_cluster_len(&self) -> usize {
        self.max_len
    }

    /// Total number of slots indexed (= number of live records).
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Iterates `(value, cluster)` pairs in ascending value-code order —
    /// the same order the former `BTreeMap` layout iterated in.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &[u32])> {
        self.heads
            .iter()
            .enumerate()
            .filter(|&(_, &idx)| idx != NONE)
            .map(|(value, &idx)| {
                let m = self.meta[idx as usize];
                (
                    value as ValueId,
                    &self.data[m.start as usize..(m.start + m.len) as usize],
                )
            })
    }

    /// Iterates only clusters with two or more records — the *stripped*
    /// view relevant for FD validation (a singleton cluster can never
    /// participate in a violation).
    pub fn iter_non_singleton(&self) -> impl Iterator<Item = (ValueId, &[u32])> {
        self.iter().filter(|(_, c)| c.len() > 1)
    }

    /// Number of non-singleton clusters.
    pub fn non_singleton_count(&self) -> usize {
        self.meta.iter().filter(|m| m.len > 1).count()
    }

    /// Whether the PLI indexes no records.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Backing-arena extent in slots (live ranges + free ranges), for
    /// memory accounting and fragmentation diagnostics.
    pub fn arena_capacity(&self) -> usize {
        self.data.len()
    }

    /// Approximate resident bytes of this PLI: head table, cluster
    /// descriptors, and the backing arena (free ranges included — they
    /// are allocated memory). A monotone-in-footprint estimate for quota
    /// accounting, not an exact allocator number.
    pub fn approx_bytes(&self) -> usize {
        64 + self.heads.len() * 4
            + self.meta.len() * std::mem::size_of::<ClusterMeta>()
            + self.data.len() * 4
            + self
                .free_ranges
                .iter()
                .map(|f| 24 + f.len() * 4)
                .sum::<usize>()
    }
}

/// Intersects two rid-sorted clusters (slot slices of possibly different
/// PLIs over the same relation), appending the slots common to both to
/// `out` in rid order — the partition-product refinement step
/// (π_a · π_b) evaluated cluster-by-cluster.
///
/// Both inputs are contiguous `u32` slices sorted by the occupying
/// record id (`slot_rids[slot]`), so the intersection is a sorted merge.
/// When the sizes are lopsided (> [`kernel::GALLOP_RATIO`]×), the merge
/// *gallops*: each member of the small side binary-searches the large
/// side with exponentially growing probes, giving O(small · log large)
/// instead of O(small + large). Comparable-size inputs above
/// [`kernel::SIMD_MIN_LEN`] dispatch to the explicitly vectorized
/// block-compare kernel ([`kernel::intersect_keyed`]): record-id keys
/// are gathered into thread-local scratch, narrowed to `u32` (falling
/// back to the scalar merge for the rare relation whose rids outgrow
/// `u32`), and the surviving `a`-side slots come back compacted in rid
/// order — bit-identical to the scalar merge by the kernel's contract.
pub fn intersect_clusters(a: &[u32], b: &[u32], slot_rids: &[RecordId], out: &mut Vec<u32>) {
    let (small, large, small_is_a) = if a.len() <= b.len() {
        (a, b, true)
    } else {
        (b, a, false)
    };
    if small.is_empty() {
        return;
    }
    let rid = |s: u32| slot_rids[s as usize];
    if kernel::use_gallop(small.len(), large.len()) {
        // Galloping path: probe the large side per small member.
        let mut lo = 0usize;
        for &s in small {
            let key = rid(s);
            // Exponential probe from the last match position.
            let mut step = 1usize;
            let mut hi = lo;
            while hi < large.len() && rid(large[hi]) < key {
                lo = hi + 1;
                hi += step;
                step <<= 1;
            }
            // The probe stopped at `hi` because `large[hi] >= key` (or
            // ran off the end); `hi` itself may hold the key, so the
            // search window must include it.
            let hi = (hi + 1).min(large.len());
            match large[lo..hi].binary_search_by(|&x| rid(x).cmp(&key)) {
                Ok(pos) => {
                    out.push(if small_is_a { s } else { large[lo + pos] });
                    lo += pos + 1;
                }
                Err(pos) => lo += pos,
            }
            if lo >= large.len() {
                break;
            }
        }
    } else if !try_simd_intersect(a, b, slot_rids, out) {
        // Linear merge over the two contiguous slices.
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            let (ri, rj) = (rid(small[i]), rid(large[j]));
            match ri.cmp(&rj) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(if small_is_a { small[i] } else { large[j] });
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread gather scratch for the SIMD path: the two clusters'
    /// record-id keys, narrowed to `u32`. Thread-local so parallel
    /// validation workers never contend or allocate per call.
    static GATHER_KEYS: std::cell::RefCell<(Vec<u32>, Vec<u32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Attempts the vectorized block-compare path. Returns `false` (having
/// written nothing) when the active kernel is scalar, either side is too
/// short to amortize the gather, or a record id does not fit in `u32`
/// (the clusters are rid-sorted, so checking each side's last member
/// bounds the whole slice).
fn try_simd_intersect(a: &[u32], b: &[u32], slot_rids: &[RecordId], out: &mut Vec<u32>) -> bool {
    let kind = kernel::active_kernel();
    if kind == kernel::KernelKind::Scalar
        || a.len() < kernel::SIMD_MIN_LEN
        || b.len() < kernel::SIMD_MIN_LEN
    {
        return false;
    }
    let amax = slot_rids[a[a.len() - 1] as usize].0;
    let bmax = slot_rids[b[b.len() - 1] as usize].0;
    if amax > u64::from(u32::MAX) || bmax > u64::from(u32::MAX) {
        return false;
    }
    GATHER_KEYS.with(|g| {
        let (a_keys, b_keys) = &mut *g.borrow_mut();
        a_keys.clear();
        a_keys.extend(a.iter().map(|&s| slot_rids[s as usize].0 as u32));
        b_keys.clear();
        b_keys.extend(b.iter().map(|&s| slot_rids[s as usize].0 as u32));
        kernel::intersect_keyed_with(kind, a_keys, a, b_keys, out);
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test harness: slot i is occupied by rid i (identity mapping), as
    /// in a churn-free relation.
    fn identity_rids(n: u64) -> Vec<RecordId> {
        (0..n).map(RecordId).collect()
    }

    fn insert_id(p: &mut Pli, value: ValueId, i: u64, rids: &[RecordId]) {
        p.insert(value, i as u32, RecordId(i), rids);
    }

    #[test]
    fn insert_groups_by_value() {
        let rids = identity_rids(16);
        let mut p = Pli::new();
        insert_id(&mut p, 0, 1, &rids);
        insert_id(&mut p, 0, 2, &rids);
        insert_id(&mut p, 1, 3, &rids);
        assert_eq!(p.cluster(0), Some(&[1u32, 2][..]));
        assert_eq!(p.cluster(1), Some(&[3u32][..]));
        assert_eq!(p.cluster(2), None);
        assert_eq!(p.cluster_count(), 2);
        assert_eq!(p.entry_count(), 3);
    }

    #[test]
    fn remove_drops_empty_clusters_and_recycles_ranges() {
        let rids = identity_rids(16);
        let mut p = Pli::new();
        insert_id(&mut p, 5, 1, &rids);
        insert_id(&mut p, 5, 2, &rids);
        assert!(p.remove(5, 1, RecordId(1), &rids));
        assert_eq!(p.cluster(5), Some(&[2u32][..]));
        assert!(p.remove(5, 2, RecordId(2), &rids));
        assert_eq!(p.cluster(5), None);
        assert_eq!(p.cluster_count(), 0);
        assert!(p.is_empty());
        let capacity_after_churn = p.arena_capacity();
        // Re-inserting reuses freed ranges: the arena does not grow.
        insert_id(&mut p, 7, 3, &rids);
        assert_eq!(p.arena_capacity(), capacity_after_churn);
    }

    #[test]
    fn remove_missing_is_false() {
        let rids = identity_rids(16);
        let mut p = Pli::new();
        insert_id(&mut p, 1, 1, &rids);
        assert!(!p.remove(1, 9, RecordId(9), &rids));
        assert!(!p.remove(7, 1, RecordId(1), &rids));
        assert_eq!(p.entry_count(), 1);
    }

    #[test]
    fn clusters_stay_rid_sorted_under_monotonic_inserts() {
        let rids = identity_rids(100);
        let mut p = Pli::new();
        for i in 0..100u64 {
            insert_id(&mut p, (i % 3) as ValueId, i, &rids);
        }
        for (_, c) in p.iter() {
            assert!(c
                .windows(2)
                .all(|w| rids[w[0] as usize] < rids[w[1] as usize]));
        }
        // Growth through several size classes kept every member.
        assert_eq!(p.entry_count(), 100);
        assert_eq!(p.cluster(0).map(<[u32]>::len), Some(34));
    }

    #[test]
    fn clusters_sort_by_rid_not_slot() {
        // Slot numbers out of rid order (free-list reuse): cluster order
        // must follow rids.
        let rids = vec![RecordId(50), RecordId(10), RecordId(30)];
        let mut p = Pli::new();
        p.insert(0, 1, RecordId(10), &rids);
        p.insert(0, 2, RecordId(30), &rids);
        p.insert(0, 0, RecordId(50), &rids);
        assert_eq!(p.cluster(0), Some(&[1u32, 2, 0][..]));
        assert!(p.remove(0, 2, RecordId(30), &rids));
        assert_eq!(p.cluster(0), Some(&[1u32, 0][..]));
    }

    #[test]
    fn restore_reinserts_at_sorted_position() {
        let rids = identity_rids(16);
        let mut p = Pli::new();
        for i in [1u64, 3, 5] {
            insert_id(&mut p, 0, i, &rids);
        }
        assert!(p.remove(0, 3, RecordId(3), &rids));
        p.restore(0, 3, RecordId(3), &rids);
        assert_eq!(p.cluster(0), Some(&[1u32, 3, 5][..]));
        // Restoring an id below the minimum works too.
        assert!(p.remove(0, 1, RecordId(1), &rids));
        p.restore(0, 1, RecordId(1), &rids);
        assert_eq!(p.cluster(0), Some(&[1u32, 3, 5][..]));
        // Restore into a dropped cluster recreates it.
        for i in [1u64, 3, 5] {
            assert!(p.remove(0, i as u32, RecordId(i), &rids));
        }
        p.restore(0, 5, RecordId(5), &rids);
        assert_eq!(p.cluster(0), Some(&[5u32][..]));
    }

    #[test]
    fn non_singleton_view() {
        let rids = identity_rids(16);
        let mut p = Pli::new();
        insert_id(&mut p, 0, 0, &rids);
        insert_id(&mut p, 1, 1, &rids);
        insert_id(&mut p, 1, 2, &rids);
        assert_eq!(p.non_singleton_count(), 1);
        let stripped: Vec<_> = p.iter_non_singleton().collect();
        assert_eq!(stripped.len(), 1);
        assert_eq!(stripped[0].0, 1);
    }

    #[test]
    fn max_cluster_len_is_exact_under_churn() {
        let rids = identity_rids(16);
        let mut p = Pli::new();
        assert_eq!(p.max_cluster_len(), 0);
        insert_id(&mut p, 0, 0, &rids);
        insert_id(&mut p, 0, 1, &rids);
        insert_id(&mut p, 0, 2, &rids);
        insert_id(&mut p, 1, 3, &rids);
        insert_id(&mut p, 1, 4, &rids);
        assert_eq!(p.max_cluster_len(), 3);
        // Shrinking the maximal cluster recomputes the maximum.
        assert!(p.remove(0, 1, RecordId(1), &rids));
        assert_eq!(p.max_cluster_len(), 2);
        assert!(p.remove(0, 0, RecordId(0), &rids));
        assert!(p.remove(0, 2, RecordId(2), &rids));
        assert_eq!(p.max_cluster_len(), 2);
        assert!(p.remove(1, 3, RecordId(3), &rids));
        assert_eq!(p.max_cluster_len(), 1);
        // Restore grows it back.
        p.restore(1, 3, RecordId(3), &rids);
        assert_eq!(p.max_cluster_len(), 2);
        assert!(p.remove(1, 3, RecordId(3), &rids));
        assert!(p.remove(1, 4, RecordId(4), &rids));
        assert_eq!(p.max_cluster_len(), 0);
    }

    #[test]
    fn iteration_is_value_ordered() {
        let rids = identity_rids(16);
        let mut p = Pli::new();
        insert_id(&mut p, 2, 0, &rids);
        insert_id(&mut p, 0, 1, &rids);
        insert_id(&mut p, 1, 2, &rids);
        let values: Vec<ValueId> = p.iter().map(|(v, _)| v).collect();
        assert_eq!(values, vec![0, 1, 2]);
        // Dropping a cluster keeps the others ordered (swap-remove in
        // `meta` must not leak into iteration order).
        assert!(p.remove(0, 1, RecordId(1), &rids));
        let values: Vec<ValueId> = p.iter().map(|(v, _)| v).collect();
        assert_eq!(values, vec![1, 2]);
    }

    #[test]
    fn intersect_merge_and_gallop_agree() {
        let rids = identity_rids(4096);
        let a: Vec<u32> = (0..4096).filter(|i| i % 3 == 0).collect();
        let b: Vec<u32> = (0..4096).filter(|i| i % 5 == 0).collect();
        let expected: Vec<u32> = (0..4096).filter(|i| i % 15 == 0).collect();
        let mut out = Vec::new();
        intersect_clusters(&a, &b, &rids, &mut out);
        assert_eq!(out, expected);
        // Lopsided sizes take the galloping path; same result.
        let small: Vec<u32> = (0..4096).filter(|i| i % 512 == 0).collect();
        let mut out = Vec::new();
        intersect_clusters(&small, &b, &rids, &mut out);
        let expected: Vec<u32> = (0..4096).filter(|i| i % 2560 == 0).collect();
        assert_eq!(out, expected);
        // Symmetric argument order.
        let mut out2 = Vec::new();
        intersect_clusters(&b, &small, &rids, &mut out2);
        assert_eq!(out2, expected);
    }

    #[test]
    fn intersect_empty_and_disjoint() {
        let rids = identity_rids(64);
        let mut out = Vec::new();
        intersect_clusters(&[], &[1, 2, 3], &rids, &mut out);
        assert!(out.is_empty());
        intersect_clusters(&[0, 2, 4], &[1, 3, 5], &rids, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intersect_respects_rid_order_not_slot_order() {
        // Slots scrambled relative to rids: intersection keys on rids.
        let rids = vec![RecordId(9), RecordId(1), RecordId(5), RecordId(3)];
        // Cluster A = slots {1, 3, 0} (rids 1, 3, 9); B = slots {1, 2, 0}
        // (rids 1, 5, 9).
        let mut out = Vec::new();
        intersect_clusters(&[1, 3, 0], &[1, 2, 0], &rids, &mut out);
        assert_eq!(out, vec![1, 0]);
    }

    /// Reference intersection: plain double loop on rid keys.
    fn reference_intersect(a: &[u32], b: &[u32], rids: &[RecordId]) -> Vec<u32> {
        a.iter()
            .copied()
            .filter(|&s| b.iter().any(|&t| rids[t as usize] == rids[s as usize]))
            .collect()
    }

    #[test]
    fn gallop_threshold_boundary_agrees_with_merge() {
        // Sizes at ratios GALLOP_RATIO - 1, GALLOP_RATIO, GALLOP_RATIO + 1
        // (7x / 8x / 9x): the middle one is the first to gallop, and all
        // three must agree with the plain merge result. A future tweak of
        // the tunable shifts which path runs, never what it returns.
        let rids = identity_rids(4096);
        for ratio in [
            kernel::GALLOP_RATIO - 1,
            kernel::GALLOP_RATIO,
            kernel::GALLOP_RATIO + 1,
        ] {
            let small_len = 32usize;
            let large_len = small_len * ratio;
            assert_eq!(
                kernel::use_gallop(small_len, large_len),
                ratio >= kernel::GALLOP_RATIO
            );
            let small: Vec<u32> = (0..small_len as u32).map(|i| i * 7 % 4096).collect();
            let mut small = small;
            small.sort_unstable();
            small.dedup();
            let large: Vec<u32> = (0..large_len as u32).map(|i| i * 3 % 4096).collect();
            let mut large = large;
            large.sort_unstable();
            large.dedup();
            let expected = reference_intersect(&small, &large, &rids);
            let mut out = Vec::new();
            intersect_clusters(&small, &large, &rids, &mut out);
            assert_eq!(out, expected, "ratio {ratio} (a = small) diverged");
            // Argument order flipped: the result must hold b-side slots.
            let expected_b = reference_intersect(&large, &small, &rids);
            let mut out = Vec::new();
            intersect_clusters(&large, &small, &rids, &mut out);
            assert_eq!(out, expected_b, "ratio {ratio} (a = large) diverged");
        }
    }

    #[test]
    fn simd_and_scalar_cluster_intersections_agree() {
        // Comparable sizes above SIMD_MIN_LEN take the vectorized path
        // when enabled; forcing scalar must not change a single slot.
        let rids = identity_rids(8192);
        let a: Vec<u32> = (0..8192).filter(|i| i % 2 == 0).collect();
        let b: Vec<u32> = (0..8192).filter(|i| i % 3 != 1).collect();
        let mut simd_out = Vec::new();
        kernel::set_simd_enabled(true);
        intersect_clusters(&a, &b, &rids, &mut simd_out);
        let mut scalar_out = Vec::new();
        kernel::set_simd_enabled(false);
        intersect_clusters(&a, &b, &rids, &mut scalar_out);
        kernel::set_simd_enabled(true);
        assert_eq!(simd_out, scalar_out);
        assert_eq!(simd_out, reference_intersect(&a, &b, &rids));
    }

    #[test]
    fn oversized_rids_fall_back_to_scalar() {
        // Record ids beyond u32::MAX cannot narrow: the SIMD gather is
        // refused and the scalar merge answers, keys still compared as
        // full u64 rids.
        let base = u64::from(u32::MAX) - 8;
        let rids: Vec<RecordId> = (0..64).map(|i| RecordId(base + i)).collect();
        let a: Vec<u32> = (0..64).collect();
        let b: Vec<u32> = (0..64).filter(|i| i % 2 == 0).collect();
        let mut out = Vec::new();
        intersect_clusters(&a, &b, &rids, &mut out);
        assert_eq!(out, reference_intersect(&a, &b, &rids));
    }
}
