//! Property tests for the transactional `apply_batch` contract, driven
//! by testkit traces: a batch that is *rejected* (validation failure) or
//! that *fails mid-flight* (injected panic at a seeded failpoint) must
//! leave the engine structurally equal to a pre-batch clone, and the
//! remaining valid batches must then land on covers that match all three
//! static oracles — exactly as if the fault had never happened.

use dynfd::common::RecordId;
use dynfd::core::{DynFd, DynFdConfig, DynFdError, FailAction, FailPhase, FailPoint};
use dynfd::relation::{Batch, ChangeOp};
use dynfd::staticfd::Oracle;
use dynfd_testkit::{silence_injected_panics, Trace, TraceProfile};
use proptest::prelude::*;

/// The kinds of fault the property injects at one chosen batch.
#[derive(Clone, Copy, Debug)]
enum Fault {
    /// Append a delete of a record id that can never exist.
    UnknownDelete,
    /// Append an insert with one column too many.
    ArityMismatch,
    /// Append the same live-record delete twice.
    DoubleDelete,
    /// Arm a panic failpoint inside a maintenance phase.
    MidBatchPanic { insert_phase: bool, after: usize },
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::UnknownDelete),
        Just(Fault::ArityMismatch),
        Just(Fault::DoubleDelete),
        (any::<bool>(), 0usize..6).prop_map(|(insert_phase, after)| Fault::MidBatchPanic {
            insert_phase,
            after
        }),
    ]
}

/// Builds a copy of `batch` with one op appended that must make the
/// whole batch fail validation.
fn poison(batch: &Batch, dynfd: &DynFd, fault: Fault) -> Batch {
    let mut ops = batch.ops().to_vec();
    // Beyond every id the batch's own inserts could be assigned — a
    // smaller id would be a legal same-batch deferred delete.
    let unknown = RecordId(dynfd.relation().next_id().0 + batch.len() as u64 + 1);
    match fault {
        Fault::UnknownDelete => ops.push(ChangeOp::Delete(unknown)),
        Fault::ArityMismatch => ops.push(ChangeOp::Insert(vec![
            "x".to_string();
            dynfd.relation().arity() + 1
        ])),
        Fault::DoubleDelete => match dynfd.relation().record_ids().next() {
            Some(rid) => {
                ops.push(ChangeOp::Delete(rid));
                ops.push(ChangeOp::Delete(rid));
            }
            None => ops.push(ChangeOp::Delete(unknown)),
        },
        Fault::MidBatchPanic { .. } => unreachable!("panic faults do not poison the batch"),
    }
    Batch::from_ops(ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One fault is injected at a trace-relative batch index; the engine
    /// must reject or roll back atomically, and the rest of the trace
    /// must replay to oracle-identical covers.
    #[test]
    fn faulted_batches_leave_no_trace(
        seed in 0u64..500,
        profile_idx in 0usize..TraceProfile::ALL.len(),
        fault in arb_fault(),
        inject_at in 0usize..16,
    ) {
        silence_injected_panics();
        let trace = Trace::generate(TraceProfile::ALL[profile_idx], seed);
        let batches = trace.to_batches();
        if batches.is_empty() {
            return Ok(());
        }
        let inject_at = inject_at % batches.len();

        let mut dynfd = DynFd::new(trace.to_relation(), DynFdConfig::default());
        for (i, batch) in batches.iter().enumerate() {
            let mut already_applied = false;
            if i == inject_at {
                let pre = dynfd.clone();
                match fault {
                    Fault::MidBatchPanic { insert_phase, after } => {
                        dynfd.arm_failpoint(FailPoint {
                            phase: if insert_phase {
                                FailPhase::InsertPhase
                            } else {
                                FailPhase::DeletePhase
                            },
                            after_validations: after,
                            action: FailAction::Panic,
                        });
                        match dynfd.apply_batch(batch) {
                            Ok(_) => {
                                // The seeded point was never reached; the
                                // batch applied cleanly on the first try.
                                dynfd.disarm_failpoint();
                                already_applied = true;
                            }
                            Err(e) => {
                                let panicked = matches!(e, DynFdError::PhasePanicked { .. });
                                prop_assert!(panicked, "unexpected error: {}", e);
                                prop_assert!(!e.is_rejection());
                                prop_assert_eq!(dynfd.state_divergence(&pre), None);
                            }
                        }
                    }
                    _ => {
                        let err = dynfd.apply_batch(&poison(batch, &dynfd, fault));
                        let err = err.expect_err("poisoned batch must be rejected");
                        prop_assert!(err.is_rejection(), "got non-rejection: {}", err);
                        prop_assert!((3..=9).contains(&err.exit_code()));
                        prop_assert_eq!(dynfd.state_divergence(&pre), None);
                    }
                }
            }
            if !already_applied {
                let result = dynfd.apply_batch(batch);
                prop_assert!(result.is_ok(), "clean batch failed: {:?}", result.err());
            }
        }

        // The fault left no trace: the maintained covers equal static
        // rediscovery by every oracle, and all internal invariants hold.
        for oracle in Oracle::ALL {
            prop_assert_eq!(
                dynfd.positive_cover(),
                &oracle.discover(dynfd.relation()),
                "diverged from {}",
                oracle.name()
            );
        }
        dynfd.verify_consistency().unwrap();
    }

    /// Back-to-back faults on *every* batch of a trace: each batch is
    /// first rejected (poisoned variant), then panicked (failpoint),
    /// then applied cleanly — the harshest schedule for undo-log and
    /// snapshot bookkeeping.
    #[test]
    fn every_batch_survives_reject_then_panic_then_apply(
        seed in 0u64..200,
        profile_idx in 0usize..TraceProfile::ALL.len(),
    ) {
        silence_injected_panics();
        let trace = Trace::generate(TraceProfile::ALL[profile_idx], seed);
        let mut dynfd = DynFd::new(trace.to_relation(), DynFdConfig::default());

        for batch in trace.to_batches() {
            let pre = dynfd.clone();
            let err = dynfd
                .apply_batch(&poison(&batch, &dynfd, Fault::UnknownDelete))
                .expect_err("poisoned batch must be rejected");
            prop_assert!(err.is_rejection());
            prop_assert_eq!(dynfd.state_divergence(&pre), None);

            dynfd.arm_failpoint(FailPoint {
                phase: FailPhase::InsertPhase,
                after_validations: 0,
                action: FailAction::Panic,
            });
            match dynfd.apply_batch(&batch) {
                Ok(_) => dynfd.disarm_failpoint(),
                Err(e) => {
                    let panicked = matches!(e, DynFdError::PhasePanicked { .. });
                    prop_assert!(panicked, "unexpected error: {}", e);
                    prop_assert_eq!(dynfd.state_divergence(&pre), None);
                    prop_assert!(dynfd.apply_batch(&batch).is_ok(), "retry must succeed");
                }
            }
        }

        for oracle in Oracle::ALL {
            prop_assert_eq!(dynfd.positive_cover(), &oracle.discover(dynfd.relation()));
        }
        dynfd.verify_consistency().unwrap();
    }
}
