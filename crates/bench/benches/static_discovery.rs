//! Static discovery benchmarks: HyFD vs. TANE vs. FDEP on the same
//! relation, plus the cover-inversion step (Algorithm 1) that DynFD runs
//! at bootstrap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynfd_common::Schema;
use dynfd_lattice::invert_positive_cover;
use dynfd_relation::DynamicRelation;

fn build_relation(rows: usize, cols: usize) -> DynamicRelation {
    let data: Vec<Vec<String>> = (0..rows)
        .map(|i| {
            (0..cols)
                .map(|c| {
                    let d = 3 + (c * 7) % 30;
                    format!("v{}_{}", c, (i * (c + 1)) % d)
                })
                .collect()
        })
        .collect();
    DynamicRelation::from_rows(Schema::anonymous("bench", cols), &data).unwrap()
}

fn bench_algorithms(c: &mut Criterion) {
    let rel = build_relation(400, 7);
    let mut group = c.benchmark_group("static_discovery_400x7");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("hyfd"), |b| {
        b.iter(|| dynfd_static::hyfd::discover(&rel).len())
    });
    group.bench_function(BenchmarkId::from_parameter("tane"), |b| {
        b.iter(|| dynfd_static::tane::discover(&rel).len())
    });
    group.bench_function(BenchmarkId::from_parameter("fdep"), |b| {
        b.iter(|| dynfd_static::fdep::discover(&rel).len())
    });
    group.finish();
}

fn bench_cover_inversion(c: &mut Criterion) {
    let rel = build_relation(400, 10);
    let fds = dynfd_static::hyfd::discover(&rel);
    c.bench_function("cover_inversion_algorithm1", |b| {
        b.iter(|| invert_positive_cover(&fds, rel.arity()).len())
    });
}

criterion_group!(benches, bench_algorithms, bench_cover_inversion);
criterion_main!(benches);
