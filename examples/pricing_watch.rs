//! Tracking a business rule through a system migration.
//!
//! The paper's introduction: "the FD product → price in a pricing
//! database was temporarily violated at the time of a system migration."
//! This example encodes that storyline: a pricing table where
//! `product -> price` holds, a migration batch that writes conflicting
//! prices, and a cleanup batch that repairs them — with DynFD reporting
//! the dependency's validity after every batch.
//!
//! ```text
//! cargo run --example pricing_watch
//! ```

use dynfd::common::{AttrSet, Fd, RecordId, Schema};
use dynfd::core::{DynFd, DynFdConfig};
use dynfd::relation::{Batch, DynamicRelation};

fn main() {
    let schema = Schema::of("pricing", &["order_id", "product", "price", "region"]);
    let product = schema.column_index("product").unwrap();
    let price = schema.column_index("price").unwrap();
    let product_determines_price = Fd::new(AttrSet::single(product), price);

    // Day 0: consistent prices — every order of a product has its price.
    let rows: Vec<Vec<String>> = (0..60)
        .map(|i| {
            let p = i % 6; // six products
            vec![
                format!("o{i}"),
                format!("prod-{p}"),
                format!("{}.99", 10 + p * 5),
                format!("region-{}", i % 3),
            ]
        })
        .collect();
    let rel = DynamicRelation::from_rows(schema.clone(), &rows).unwrap();
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());
    report(&dynfd, &schema, &product_determines_price, "initial load");

    // Migration day: a legacy system replays old orders with stale
    // prices — the dependency breaks.
    let mut migration = Batch::new();
    for i in 0..5 {
        migration.insert(vec![
            format!("legacy-{i}"),
            format!("prod-{}", i % 6),
            "7.49".to_string(), // stale flat price
            "region-legacy".to_string(),
        ]);
    }
    let result = dynfd.apply_batch(&migration).unwrap();
    println!(
        "migration batch: {} FDs removed, {} added",
        result.removed.len(),
        result.added.len()
    );
    report(
        &dynfd,
        &schema,
        &product_determines_price,
        "after migration",
    );

    // Cleanup: the stale rows are corrected (update = delete + insert).
    let mut cleanup = Batch::new();
    for i in 0..5u64 {
        let rid = RecordId(60 + i); // ids assigned to the legacy inserts
        let p = (i % 6) as usize;
        cleanup.update(
            rid,
            vec![
                format!("legacy-{i}"),
                format!("prod-{p}"),
                format!("{}.99", 10 + p * 5),
                "region-legacy".to_string(),
            ],
        );
    }
    dynfd.apply_batch(&cleanup).unwrap();
    report(&dynfd, &schema, &product_determines_price, "after cleanup");
}

fn report(dynfd: &DynFd, schema: &Schema, fd: &Fd, stage: &str) {
    // The FD holds iff the positive cover implies it (a generalization
    // — possibly the FD itself — is a minimal FD).
    let holds = dynfd
        .positive_cover()
        .contains_generalization(fd.lhs, fd.rhs);
    println!(
        "[{stage}] {}: {}   ({} minimal FDs total)",
        fd.display(schema),
        if holds { "HOLDS" } else { "VIOLATED" },
        dynfd.minimal_fds().len()
    );
}
