//! The DynFD maintenance pipeline (paper Figure 1).

use crate::config::ConsistencyLevel;
use crate::diff::diff_covers;
use crate::errors::{panic_detail, DynFdError, DynFdResult};
use crate::failpoint::FailPoint;
use crate::{BatchMetrics, BatchResult, DynFdConfig, ViolationStore};
use dynfd_common::Fd;
use dynfd_lattice::{invert_positive_cover, FdTree};
use dynfd_relation::{
    adaptive_workers, validate_fd, validate_many, validate_many_cached, Batch, DynamicRelation,
    PliCache, ValidationJob, ValidationOptions, ValidationResult,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Memory-pressure level a resource governor may impose on the
/// acceleration layer (the PLI-intersection cache).
///
/// Pressure is *observationally invisible* to the FD semantics: covers,
/// verdicts, and annotation validity are identical at any level (the
/// cache-equivalence guarantee) — only wall-clock time and resident
/// bytes change. Governors (the serve layer's global byte budget) step
/// an engine down through [`Squeezed`](CachePressure::Squeezed) to
/// [`Uncached`](CachePressure::Uncached) before resorting to eviction,
/// and back to [`Normal`](CachePressure::Normal) when pressure clears.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CachePressure {
    /// No pressure: the configured `pli_cache`/`pli_cache_bytes` apply.
    #[default]
    Normal,
    /// Cache budget clamped to `min(configured, given)` bytes; excess
    /// entries are evicted immediately.
    Squeezed(usize),
    /// Cache dropped entirely; validation runs uncached until pressure
    /// lifts.
    Uncached,
}

/// Maintains the minimal, non-trivial FDs of a relation under batches of
/// inserts, updates, and deletes.
///
/// Construction bootstraps the covers: the positive cover comes from a
/// static HyFD run over the initial tuples (paper Section 2); the
/// negative cover is derived from it by cover inversion (Algorithm 1).
/// From then on, [`DynFd::apply_batch`] *evolves* the covers instead of
/// recomputing them.
///
/// ```
/// use dynfd_core::{DynFd, DynFdConfig};
/// use dynfd_relation::{Batch, DynamicRelation};
/// use dynfd_common::{RecordId, Schema};
///
/// let schema = Schema::of("people", &["firstname", "lastname", "zip", "city"]);
/// let rel = DynamicRelation::from_rows(schema, &[
///     vec!["Max", "Jones", "14482", "Potsdam"],
///     vec!["Max", "Miller", "14482", "Potsdam"],
///     vec!["Max", "Jones", "10115", "Berlin"],
///     vec!["Anna", "Scott", "13591", "Berlin"],
/// ]).unwrap();
/// let mut dynfd = DynFd::new(rel, DynFdConfig::default());
/// assert_eq!(dynfd.minimal_fds().len(), 5); // Figure 2 of the paper
///
/// // The batch of Table 1: delete tuple 3, insert tuples 5 and 6.
/// let mut batch = Batch::new();
/// batch.delete(RecordId(2))
///      .insert(vec!["Marie", "Scott", "14467", "Potsdam"])
///      .insert(vec!["Marie", "Gray", "14469", "Potsdam"]);
/// let result = dynfd.apply_batch(&batch).unwrap();
/// assert!(!result.is_unchanged());
/// ```
#[derive(Clone, Debug)]
pub struct DynFd {
    pub(crate) rel: DynamicRelation,
    /// Positive cover: all minimal, non-trivial FDs.
    pub(crate) fds: FdTree,
    /// Negative cover: all maximal non-FDs.
    pub(crate) non_fds: FdTree,
    /// §5.2 surrogate violations for the negative cover.
    pub(crate) violations: ViolationStore,
    pub(crate) config: DynFdConfig,
    /// One-shot injected fault for the next batch (fault-injection
    /// testing; see `failpoint.rs`). Not part of the engine *state*:
    /// [`DynFd::state_divergence`] ignores it.
    pub(crate) failpoint: Option<FailPoint>,
    /// Memoized PLI intersections reused across candidates and batches
    /// (`DynFdConfig::pli_cache`). Pure acceleration state derived from
    /// the relation: [`DynFd::state_divergence`] deliberately ignores
    /// it, and it is cleared whenever a batch rolls back.
    pub(crate) pli_cache: PliCache,
    /// Governor-imposed memory pressure on the acceleration layer (see
    /// [`CachePressure`]). Operator bookkeeping like `failpoint`:
    /// [`DynFd::state_divergence`] ignores it.
    cache_pressure: CachePressure,
    /// Lifetime count of degraded-mode cover rebuilds.
    recoveries: u64,
    /// Human-readable description of the most recent consistency breach
    /// that triggered a rebuild.
    last_breach: Option<String>,
}

impl DynFd {
    /// Bootstraps DynFD over `rel`: runs HyFD for the positive cover and
    /// inverts it into the negative cover.
    pub fn new(rel: DynamicRelation, config: DynFdConfig) -> Self {
        let fds = dynfd_static::hyfd::discover(&rel);
        Self::with_cover(rel, fds, config)
    }

    /// Bootstraps DynFD from a pre-profiled positive cover (e.g. loaded
    /// from a metadata store). The cover must be the *exact* set of
    /// minimal, non-trivial FDs of `rel`; the negative cover is derived
    /// via cover inversion (Algorithm 1).
    pub fn with_cover(rel: DynamicRelation, fds: FdTree, config: DynFdConfig) -> Self {
        let non_fds = invert_positive_cover(&fds, rel.arity());
        DynFd {
            rel,
            fds,
            non_fds,
            violations: ViolationStore::new(),
            config,
            failpoint: None,
            pli_cache: PliCache::new(config.pli_cache_bytes),
            cache_pressure: CachePressure::Normal,
            recoveries: 0,
            last_breach: None,
        }
    }

    /// Reassembles an engine from previously saved state: the relation,
    /// both covers, and the §5.2 violation annotations, all restored
    /// verbatim — nothing is re-derived, so the result is structurally
    /// identical ([`DynFd::state_eq`]) to the instance the state was
    /// read from. This is the restore path of the durable engine
    /// (`dynfd-persist`); the caller vouches that the parts belong
    /// together (snapshot checksums guard the transport).
    ///
    /// Acceleration state (the PLI-intersection cache) and recovery
    /// statistics start empty — they are derived/operator data that
    /// [`DynFd::state_divergence`] deliberately ignores.
    pub fn from_saved_state(
        rel: DynamicRelation,
        fds: FdTree,
        non_fds: FdTree,
        annotations: &[(Fd, (dynfd_common::RecordId, dynfd_common::RecordId))],
        config: DynFdConfig,
    ) -> Self {
        let mut violations = ViolationStore::new();
        for &(fd, pair) in annotations {
            violations.attach(fd, pair);
        }
        DynFd {
            rel,
            fds,
            non_fds,
            violations,
            config,
            failpoint: None,
            pli_cache: PliCache::new(config.pli_cache_bytes),
            cache_pressure: CachePressure::Normal,
            recoveries: 0,
            last_breach: None,
        }
    }

    /// The maintained relation.
    pub fn relation(&self) -> &DynamicRelation {
        &self.rel
    }

    /// The current minimal, non-trivial FDs, sorted deterministically.
    pub fn minimal_fds(&self) -> Vec<Fd> {
        self.fds.all_fds()
    }

    /// The positive cover (all minimal FDs) as a prefix tree.
    pub fn positive_cover(&self) -> &FdTree {
        &self.fds
    }

    /// The negative cover (all maximal non-FDs) as a prefix tree.
    pub fn negative_cover(&self) -> &FdTree {
        &self.non_fds
    }

    /// The active configuration.
    pub fn config(&self) -> &DynFdConfig {
        &self.config
    }

    /// Approximate resident bytes of this engine: the relation's
    /// columnar arena, dictionaries, and PLIs plus the PLI-intersection
    /// cache. The estimate is monotone in the real footprint (see
    /// `DynamicRelation::approx_bytes`), which is what byte quotas need.
    pub fn resident_bytes(&self) -> usize {
        self.rel.approx_bytes() + self.pli_cache.bytes()
    }

    /// The memory pressure currently imposed on the acceleration layer.
    pub fn cache_pressure(&self) -> CachePressure {
        self.cache_pressure
    }

    /// Imposes (or lifts) memory pressure on the acceleration layer.
    /// Takes effect immediately — a squeeze evicts down to the clamped
    /// budget, [`CachePressure::Uncached`] drops the cache — and stays
    /// in force for subsequent batches until reset to
    /// [`CachePressure::Normal`]. Covers and verdicts are unaffected;
    /// batches applied under pressure stamp
    /// [`BatchMetrics::degraded_batches`].
    pub fn set_cache_pressure(&mut self, pressure: CachePressure) {
        self.cache_pressure = pressure;
        match pressure {
            CachePressure::Normal => {
                self.pli_cache.set_budget(self.config.pli_cache_bytes);
            }
            CachePressure::Squeezed(bytes) => {
                self.pli_cache
                    .set_budget(bytes.min(self.config.pli_cache_bytes));
            }
            CachePressure::Uncached => self.pli_cache.clear(),
        }
    }

    /// Whether the PLI-intersection cache is active for the next batch:
    /// configured on *and* not suppressed by governor pressure.
    pub fn cache_enabled(&self) -> bool {
        self.config.pli_cache && self.cache_pressure != CachePressure::Uncached
    }

    /// The cache byte budget the next batch will run under (the
    /// configured budget clamped by any squeeze).
    fn effective_cache_budget(&self) -> usize {
        match self.cache_pressure {
            CachePressure::Squeezed(bytes) => bytes.min(self.config.pli_cache_bytes),
            _ => self.config.pli_cache_bytes,
        }
    }

    /// Number of §5.2 violation annotations currently cached.
    pub fn annotation_count(&self) -> usize {
        self.violations.len()
    }

    /// The §5.2 violation annotations, deterministically sorted (used by
    /// the parallel-determinism tests to compare runs).
    pub fn violation_annotations(
        &self,
    ) -> Vec<(Fd, (dynfd_common::RecordId, dynfd_common::RecordId))> {
        self.violations.sorted_annotations()
    }

    /// Processes one batch of change operations and returns the delta of
    /// the minimal FD set (paper Figure 1, steps 1–4).
    ///
    /// The call is **transactional**: on any error — a batch-validation
    /// rejection (unknown or duplicate record, arity mismatch, null
    /// value, dictionary overflow), an internal invariant breach, or a
    /// panic inside a maintenance phase (caught at this boundary) — the
    /// relation, both covers, and the violation annotations are rolled
    /// back to their exact pre-batch state, and the typed
    /// [`DynFdError`] tells the caller why. The engine stays fully
    /// usable; retrying or skipping the batch are both sound.
    pub fn apply_batch(&mut self, batch: &Batch) -> DynFdResult<BatchResult> {
        let start = Instant::now();
        let before = self.fds.all_fds();

        // Step 1: update the data structures. Pre-validation inside the
        // relation makes this atomic on rejection; the undo log makes it
        // reversible if steps 2–3 fail later.
        let (applied, undo) = self.rel.apply_batch_logged(batch)?;
        // Select the intersection kernel for this batch. The toggle is
        // process-global but observationally pure — every kernel
        // produces identical output — so engines with different `simd`
        // settings sharing the process only affect each other's speed.
        dynfd_relation::kernel::set_simd_enabled(self.config.simd);
        let mut metrics = BatchMetrics {
            inserts: applied.inserted.len(),
            deletes: applied.deleted.len(),
            kernel_lanes: dynfd_relation::kernel::active_kernel().lanes(),
            ..BatchMetrics::default()
        };

        // Keep the memoized PLI intersections aligned with the post-batch
        // relation before any phase probes them; counters are read as a
        // delta at the end so patch-time evictions are included.
        let cache_stats_before = self.pli_cache.stats();
        if self.cache_enabled() {
            self.pli_cache.set_budget(self.effective_cache_budget());
            self.pli_cache
                .apply_batch(&self.rel, &applied.deleted, &applied.inserted);
        } else if !self.pli_cache.is_empty() {
            self.pli_cache.clear();
        }
        if self.config.pli_cache && self.cache_pressure != CachePressure::Normal {
            metrics.degraded_batches = 1;
        }

        if applied.has_deletes() || applied.has_inserts() {
            // Snapshot the cover state the maintenance phases mutate.
            let fds_snapshot = self.fds.clone();
            let non_fds_snapshot = self.non_fds.clone();
            let violations_snapshot = self.violations.clone();

            // Deleted records invalidate their §5.2 annotations; the
            // affected non-FDs will answer "needs validation" in the
            // delete phase.
            self.violations.purge_records(&applied.deleted);

            // Step 2: deletes first (Section 2 explains the ordering),
            // then Step 3: inserts. Both phases fan their candidate
            // validations out over the configured worker budget; each is
            // guarded so that a panic anywhere inside it — including in
            // a validation worker, whose payload the join re-raises on
            // this thread — becomes a typed error.
            metrics.threads_used = self.config.effective_parallelism();
            let mut outcome: DynFdResult<()> = Ok(());
            if applied.has_deletes() {
                let phase = Instant::now();
                outcome = guard_phase("delete-phase", || {
                    self.process_deletes(&applied, &mut metrics)
                });
                metrics.delete_phase_time = phase.elapsed();
            }
            if outcome.is_ok() && applied.has_inserts() {
                let phase = Instant::now();
                outcome = guard_phase("insert-phase", || {
                    self.process_inserts(&applied, &mut metrics)
                });
                metrics.insert_phase_time = phase.elapsed();
            }

            if let Err(e) = outcome {
                self.fds = fds_snapshot;
                self.non_fds = non_fds_snapshot;
                self.violations = violations_snapshot;
                self.rel.rollback(undo);
                // The cache was already patched to the state this
                // rollback just threw away; drop it rather than trying
                // to un-patch.
                self.pli_cache.clear();
                return Err(e);
            }
        }

        // Degraded mode: if the configured self-check finds the covers
        // corrupted, fall back to a from-scratch rebuild rather than
        // serving wrong metadata. The batch itself still succeeded — the
        // relation is correct — so this surfaces through metrics, not an
        // error.
        if let Some(breach) = self.consistency_breach() {
            self.rebuild_covers();
            metrics.cover_rebuilds += 1;
            self.recoveries += 1;
            self.last_breach = Some(breach);
        }

        // Step 4: signal the changed FDs.
        let after = self.fds.all_fds();
        let (added, removed) = diff_covers(&before, &after);
        metrics.added_fds = added.len();
        metrics.removed_fds = removed.len();
        let cache_delta = self.pli_cache.stats().delta_since(&cache_stats_before);
        metrics.cache_hits = cache_delta.hits;
        metrics.cache_misses = cache_delta.misses;
        metrics.cache_evictions = cache_delta.evictions;
        metrics.cache_bytes = self.pli_cache.bytes();
        metrics.wall_time = start.elapsed();
        Ok(BatchResult {
            added,
            removed,
            metrics,
        })
    }

    /// Fans one lattice level's validation jobs out over the configured
    /// worker budget: through the PLI-intersection cache when enabled
    /// (`DynFdConfig::pli_cache`), plain otherwise, with the small-level
    /// sequential fallback (`DynFdConfig::parallel_min_jobs`) applied
    /// either way.
    pub(crate) fn run_level_validations(
        &mut self,
        jobs: &[ValidationJob],
        opts: &ValidationOptions,
    ) -> Vec<ValidationResult> {
        let threads = self.config.effective_parallelism();
        if self.cache_enabled() {
            validate_many_cached(
                &self.rel,
                jobs,
                opts,
                threads,
                self.config.parallel_min_jobs,
                &mut self.pli_cache,
            )
        } else {
            let workers = adaptive_workers(threads, jobs.len(), self.config.parallel_min_jobs);
            validate_many(&self.rel, jobs, opts, workers)
        }
    }

    /// Lifetime count of degraded-mode cover rebuilds (see
    /// [`BatchMetrics::cover_rebuilds`] for the per-batch view).
    pub fn recovery_count(&self) -> u64 {
        self.recoveries
    }

    /// Description of the most recent consistency breach that triggered
    /// a degraded-mode rebuild, if any.
    pub fn last_breach(&self) -> Option<&str> {
        self.last_breach.as_deref()
    }

    /// Rebuilds both covers from scratch: a static HyFD run over the
    /// current relation for the positive cover, inversion (Algorithm 1)
    /// for the negative cover, and a cleared annotation store. This is
    /// the degraded-mode fallback — expensive but always correct.
    pub fn rebuild_covers(&mut self) {
        self.fds = dynfd_static::hyfd::discover(&self.rel);
        self.non_fds = invert_positive_cover(&self.fds, self.rel.arity());
        self.violations.clear();
    }

    /// Runs the configured post-batch self-check and describes the first
    /// breach found, if any.
    fn consistency_breach(&self) -> Option<String> {
        match self.config.consistency {
            ConsistencyLevel::Off => None,
            ConsistencyLevel::Cheap => {
                if !self.fds.is_antichain() {
                    return Some("positive cover is not an antichain".into());
                }
                if !self.non_fds.is_antichain() {
                    return Some("negative cover is not an antichain".into());
                }
                if invert_positive_cover(&self.fds, self.rel.arity()) != self.non_fds {
                    return Some(
                        "negative cover diverged from the inversion of the positive cover".into(),
                    );
                }
                None
            }
            ConsistencyLevel::Full => self.verify_consistency().err(),
        }
    }

    /// Compares the *engine state* of two instances — relation (PLIs,
    /// dictionaries, record index, id counter), both covers, and the
    /// violation annotations — and describes the first divergence found.
    /// Configuration, armed failpoints, and recovery statistics are
    /// deliberately excluded: they are operator-facing bookkeeping, not
    /// maintained state. This is the structural oracle behind the
    /// rollback-atomicity guarantees.
    pub fn state_divergence(&self, other: &DynFd) -> Option<String> {
        if self.rel != other.rel {
            return Some("relation diverged (PLIs, dictionaries, records, or id counter)".into());
        }
        if self.fds != other.fds {
            return Some("positive cover diverged".into());
        }
        if self.non_fds != other.non_fds {
            return Some("negative cover diverged".into());
        }
        if self.violations != other.violations {
            return Some("violation annotations diverged".into());
        }
        None
    }

    /// Whether two instances hold structurally identical engine state
    /// (see [`DynFd::state_divergence`]).
    pub fn state_eq(&self, other: &DynFd) -> bool {
        self.state_divergence(other).is_none()
    }

    /// Compares the *logical* state of two instances — relation and both
    /// covers — and describes the first divergence found.
    ///
    /// Unlike [`DynFd::state_divergence`] this deliberately excludes the
    /// §5.2 violation annotations: witness pairs are surrogate
    /// accelerators whose exact choice depends on pivot order and the
    /// PLI-intersection cache state (see `dynfd_relation::validate`), so
    /// two engines that took different paths to the same logical state —
    /// e.g. a crash-recovered engine with a cold cache versus an
    /// uninterrupted run — may hold different (equally valid) pairs.
    /// Pair validity is checked separately by
    /// [`DynFd::verify_annotations`].
    pub fn logical_divergence(&self, other: &DynFd) -> Option<String> {
        if self.rel != other.rel {
            return Some("relation diverged (PLIs, dictionaries, records, or id counter)".into());
        }
        if self.fds != other.fds {
            return Some("positive cover diverged".into());
        }
        if self.non_fds != other.non_fds {
            return Some("negative cover diverged".into());
        }
        None
    }

    /// Checks that every cached §5.2 violation annotation references two
    /// live records that genuinely violate their non-FD. O(annotations)
    /// — cheap enough for production assertions, unlike
    /// [`DynFd::verify_consistency`].
    pub fn verify_annotations(&self) -> std::result::Result<(), String> {
        for nf in self.non_fds.all_fds() {
            if let Some((a, b)) = crate::ViolationStore::get(&self.violations, &nf) {
                let (Some(ra), Some(rb)) = (self.rel.compressed(a), self.rel.compressed(b)) else {
                    return Err(format!("annotation of {nf:?} references dead records"));
                };
                let agrees_on_lhs = nf.lhs.iter().all(|x| ra[x] == rb[x]);
                if !agrees_on_lhs || ra[nf.rhs] == rb[nf.rhs] {
                    return Err(format!("annotation of {nf:?} is not a violating pair"));
                }
            }
        }
        Ok(())
    }

    /// Exhaustively checks the internal invariants against the current
    /// relation state (test oracle; exponential in arity — never call on
    /// wide relations):
    ///
    /// * every positive-cover FD is valid and minimal;
    /// * every negative-cover non-FD is invalid and maximal;
    /// * the negative cover equals the inversion of the positive cover;
    /// * every cached violation annotation references two live records
    ///   that genuinely violate their non-FD.
    pub fn verify_consistency(&self) -> std::result::Result<(), String> {
        let full = ValidationOptions::full();
        if !self.fds.is_antichain() {
            return Err("positive cover is not an antichain".into());
        }
        if !self.non_fds.is_antichain() {
            return Err("negative cover is not an antichain".into());
        }
        for fd in self.fds.all_fds() {
            if !validate_fd(&self.rel, &fd, &full).is_valid() {
                return Err(format!("positive cover holds invalid FD {fd:?}"));
            }
            for gen in fd.direct_generalizations() {
                if validate_fd(&self.rel, &gen, &full).is_valid() {
                    return Err(format!("{fd:?} is not minimal: {gen:?} holds"));
                }
            }
        }
        for nf in self.non_fds.all_fds() {
            if validate_fd(&self.rel, &nf, &full).is_valid() {
                return Err(format!("negative cover holds valid FD {nf:?}"));
            }
            for spec in nf.direct_specializations(self.rel.arity()) {
                if !validate_fd(&self.rel, &spec, &full).is_valid() {
                    return Err(format!("{nf:?} is not maximal: {spec:?} is also invalid"));
                }
            }
        }
        let inverted = invert_positive_cover(&self.fds, self.rel.arity());
        if inverted != self.non_fds {
            return Err(format!(
                "negative cover diverged from inversion: have {:?}, want {:?}",
                self.non_fds.all_fds(),
                inverted.all_fds()
            ));
        }
        self.verify_annotations()
    }
}

/// Runs one maintenance phase with a panic boundary: a panic anywhere
/// inside `f` — the coordinating thread or a validation worker (whose
/// payload `parallel.rs` re-raises on join) — is converted into
/// [`DynFdError::PhasePanicked`] so `apply_batch` can roll back.
///
/// `AssertUnwindSafe` is justified by what the caller does with an
/// `Err`: every structure the closure may have half-mutated (covers,
/// violation store, relation) is discarded and restored from the
/// snapshot/undo log, so no broken invariant survives the unwind.
fn guard_phase<F>(phase: &'static str, f: F) -> DynFdResult<()>
where
    F: FnOnce() -> DynFdResult<()>,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(DynFdError::PhasePanicked {
            phase,
            detail: panic_detail(payload.as_ref()),
        }),
    }
}
