//! One framed client connection: the read-decode-dispatch loop.
//!
//! [`serve_connection`] reads frames off a byte stream, dispatches them
//! to a shared [`ServeEngine`], and writes typed responses back. The
//! contract the wire fuzzer pins:
//!
//! * every well-formed frame is answered **exactly once** — applies are
//!   answered asynchronously from the worker that ran them, everything
//!   else synchronously from the read loop;
//! * a frame whose payload does not decode is answered once with a
//!   typed parse error (best-effort request id) and the stream stays in
//!   sync;
//! * framing damage (torn or impossible length prefix) is answered once
//!   with a typed error and the loop stops — by definition the stream
//!   cannot be resynchronized;
//! * the server never crashes on wire input.
//!
//! Responses from different tenants may interleave in any order (the
//! `request_id` is the correlation key); responses for one tenant are
//! written in application order because only its one shard produces them.

use crate::server::ServeEngine;
use crate::wire::{self, FrameError, Request, Response, CODE_PARSE};
use crate::ServeError;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What one connection processed, returned when its stream ends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnectionReport {
    /// Frames read off the stream (well-formed or not).
    pub frames: u64,
    /// Responses written back.
    pub responses: u64,
    /// Whether the client asked for shutdown (the caller owns actually
    /// draining the engine).
    pub shutdown_requested: bool,
}

/// A writer shared between the read loop and worker completions, with a
/// response counter for the exactly-once accounting.
struct SharedWriter<W> {
    writer: Mutex<W>,
    responses: AtomicU64,
}

impl<W: Write> SharedWriter<W> {
    /// Writes one response frame. Write failures are swallowed: the
    /// client is gone and tearing down the connection is the read
    /// loop's job (its next read fails), not a worker thread's.
    fn send(&self, resp: &Response) {
        let payload = wire::encode_response(resp);
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if wire::write_frame(&mut *writer, &payload).is_ok() {
            self.responses.fetch_add(1, Ordering::SeqCst);
        }
    }
}

fn error_response(request_id: u64, tenant: &str, err: &ServeError) -> Response {
    let code = err.wire_code().min(u8::MAX as u32) as u8;
    Response::error(request_id, tenant, code, err.to_string())
        .with_retry_after(err.retry_after_ms().unwrap_or(0))
}

/// Serves one framed connection against `engine` until the stream ends,
/// framing breaks, the client requests shutdown, or `stop` reports true
/// between frames (the CLI's SIGINT hook; pass `|| false` when unused).
///
/// Before returning, the engine is quiesced so every in-flight apply
/// has written its response — the writer is never dropped with replies
/// outstanding.
pub fn serve_connection<R: Read, W: Write + Send + 'static>(
    engine: &Arc<ServeEngine>,
    mut reader: R,
    writer: W,
    stop: impl Fn() -> bool,
) -> ConnectionReport {
    let shared = Arc::new(SharedWriter {
        writer: Mutex::new(writer),
        responses: AtomicU64::new(0),
    });
    let mut frames = 0u64;
    let mut shutdown_requested = false;
    loop {
        if stop() {
            break;
        }
        match wire::read_frame(&mut reader) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                frames += 1;
                match wire::decode_request(&payload) {
                    Ok(Request::Open {
                        request_id,
                        tenant,
                        columns,
                        rows,
                    }) => {
                        let schema = dynfd_common::Schema::new(tenant.clone(), columns);
                        match engine.open_tenant(&tenant, schema, &rows) {
                            Ok(report) => {
                                shared.send(&Response::ok(request_id, &tenant, report.seq, 0, 0))
                            }
                            Err(err) => shared.send(&error_response(request_id, &tenant, &err)),
                        }
                    }
                    Ok(Request::Apply {
                        request_id,
                        tenant,
                        deadline_ms,
                        batch,
                    }) => {
                        let completion_writer = Arc::clone(&shared);
                        // deadline_ms 0 = "server default" (possibly none).
                        let deadline =
                            (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
                        let submitted = engine.submit_with_deadline(
                            &tenant,
                            request_id,
                            batch,
                            deadline,
                            move |reply| {
                                let resp = match reply.outcome {
                                    Ok(s) => Response::ok(
                                        reply.request_id,
                                        &reply.tenant,
                                        s.seq,
                                        s.added,
                                        s.removed,
                                    ),
                                    Err(err) => {
                                        error_response(reply.request_id, &reply.tenant, &err)
                                    }
                                };
                                completion_writer.send(&resp);
                            },
                        );
                        // Admission failures are synchronous: the job was
                        // never queued, so the reply is ours to write.
                        if let Err(err) = submitted {
                            shared.send(&error_response(request_id, &tenant, &err));
                        }
                    }
                    Ok(Request::Shutdown { request_id }) => {
                        shutdown_requested = true;
                        shared.send(&Response::ok(request_id, "", 0, 0, 0));
                        break;
                    }
                    Ok(Request::Close { request_id, tenant }) => {
                        // Synchronous by design: the drain blocks the read
                        // loop, so a client cannot race its own close with
                        // later applies to the same tenant on this stream.
                        match engine.close_tenant(&tenant) {
                            Ok(report) => shared.send(&Response::ok(
                                request_id,
                                &tenant,
                                report.seq.unwrap_or(0),
                                0,
                                0,
                            )),
                            Err(err) => shared.send(&error_response(request_id, &tenant, &err)),
                        }
                    }
                    Err((request_id, detail)) => {
                        // Payload damage with intact framing: answer once,
                        // keep reading — the stream is still in sync.
                        shared.send(&Response::error(
                            request_id,
                            "",
                            CODE_PARSE,
                            format!("undecodable request: {detail}"),
                        ));
                    }
                }
            }
            Err(err @ (FrameError::Torn { .. } | FrameError::Oversized { .. })) => {
                // Framing damage: answer once, then stop — there is no
                // frame boundary left to resynchronize on.
                frames += 1;
                shared.send(&Response::error(0, "", CODE_PARSE, err.to_string()));
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
    // Let every queued apply finish (and write its response) before the
    // report claims the connection is done.
    engine.quiesce();
    ConnectionReport {
        frames,
        responses: shared.responses.load(Ordering::SeqCst),
        shutdown_requested,
    }
}
