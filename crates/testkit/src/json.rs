//! A minimal JSON reader/writer.
//!
//! Repro files must be self-contained and human-inspectable, and the
//! build environment has no serde — this module implements the small
//! JSON subset the repro format needs: objects, arrays, strings with
//! escapes, and integer numbers (kept as raw text so `u64` seeds never
//! lose precision through an `f64`).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for integer numbers.
    pub fn num(v: impl ToString) -> Json {
        Json::Num(v.to_string())
    }

    /// The value of `key` if `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements if `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number parsed as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Flat arrays of scalars stay on one line; nested ones
                // get one element per line.
                let nested = items
                    .iter()
                    .any(|i| matches!(i, Json::Arr(_) | Json::Obj(_)));
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if nested {
                        out.push('\n');
                        pad(out, depth + 1);
                    } else if i > 0 {
                        out.push(' ');
                    }
                    item.write(out, depth + 1);
                }
                if nested {
                    out.push('\n');
                    pad(out, depth);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must contain exactly one value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            Ok(Json::Num(
                std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|e| e.to_string())?
                    .to_string(),
            ))
        }
        Some(c) => Err(format!("unexpected {:?} at byte {}", *c as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::Obj(vec![
            ("seed".into(), Json::num(u64::MAX)),
            ("name".into(), Json::Str("null-heavy \"x\"\n".into())),
            (
                "rows".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Str("".into()), Json::Str("a".into())]),
                    Json::Arr(vec![]),
                ]),
            ),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
        ]);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_hand_written_json() {
        let parsed = Json::parse(r#" { "a": [1, 2, 3], "b": { "c": "d" } } "#).unwrap();
        assert_eq!(parsed.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            parsed.get("b").unwrap().get("c").unwrap().as_str(),
            Some("d")
        );
    }

    #[test]
    fn u64_seeds_survive_without_precision_loss() {
        let seed = 0xFFFF_FFFF_FFFF_FFF7u64; // not representable as f64
        let text = Json::num(seed).to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nulL", "[1] x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_roundtrip() {
        let parsed = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(parsed.as_str(), Some("Aé"));
        let escaped = Json::parse(r#""é\t""#).unwrap();
        assert_eq!(escaped.as_str(), Some("é\t"));
    }
}
