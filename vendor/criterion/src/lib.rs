//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking surface the workspace's `benches/` use —
//! `Criterion`, benchmark groups, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros — on top of a simple median-of-samples
//! wall-clock measurement. Results are printed per benchmark and
//! collected in-process so harnesses can snapshot them as JSON
//! ([`collected_results`], [`write_json_snapshot`]).

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` should amortize setup cost. The stand-in times
/// each routine invocation individually, so the variants only mirror
/// the upstream API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to set up.
    SmallInput,
    /// Inputs are expensive to set up.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter only (prefixed by the group name when
    /// used inside a group).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id (`group/name` when grouped).
    pub id: String,
    /// Median time per iteration, in nanoseconds.
    pub median_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// All results measured so far in this process, in execution order.
pub fn collected_results() -> Vec<BenchResult> {
    RESULTS.lock().expect("results lock").clone()
}

/// A typed JSON context value for [`write_json_report`]. The original
/// `write_json_snapshot` stringified everything — which is how a
/// machine's core count ended up as `"available_cores": "1"` in
/// BENCH_pr1.json, a string a downstream plotter can't compare against
/// a thread count.
#[derive(Clone, Debug)]
pub enum ContextValue {
    /// A JSON string.
    Str(String),
    /// A JSON number (emitted without quotes).
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
}

impl ContextValue {
    fn render(&self) -> String {
        match self {
            ContextValue::Str(s) => json_string(s),
            ContextValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            ContextValue::Bool(b) => b.to_string(),
        }
    }
}

impl From<&str> for ContextValue {
    fn from(s: &str) -> Self {
        ContextValue::Str(s.to_string())
    }
}

impl From<String> for ContextValue {
    fn from(s: String) -> Self {
        ContextValue::Str(s)
    }
}

impl From<usize> for ContextValue {
    fn from(n: usize) -> Self {
        ContextValue::Num(n as f64)
    }
}

impl From<bool> for ContextValue {
    fn from(b: bool) -> Self {
        ContextValue::Bool(b)
    }
}

/// Writes all collected results to `path` as a JSON array (hand-rolled;
/// no serde in the offline build).
///
/// Kept for harnesses that only have string context; prefer
/// [`write_json_report`], which emits numbers as numbers and can
/// annotate individual rows.
pub fn write_json_snapshot(path: &str, context: &[(&str, String)]) -> std::io::Result<()> {
    let typed: Vec<(&str, ContextValue)> = context
        .iter()
        .map(|(k, v)| (*k, ContextValue::Str(v.clone())))
        .collect();
    write_json_report(path, &typed, &|_| Vec::new())
}

/// Writes all collected results to `path` with typed context values and
/// optional per-row extras: `row_extra` is called with each result and
/// returns additional key/value pairs to splice into that row's JSON
/// object (e.g. an `"oversubscribed": true` annotation for thread
/// sweeps wider than the machine).
pub fn write_json_report(
    path: &str,
    context: &[(&str, ContextValue)],
    row_extra: &dyn Fn(&BenchResult) -> Vec<(String, ContextValue)>,
) -> std::io::Result<()> {
    let results = collected_results();
    let mut out = String::from("{\n");
    for (key, value) in context {
        out.push_str(&format!("  \"{}\": {},\n", key, value.render()));
    }
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let extras: String = row_extra(r)
            .iter()
            .map(|(k, v)| format!(", \"{}\": {}", k, v.render()))
            .collect();
        out.push_str(&format!(
            "    {{\"id\": {}, \"median_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}{}}}{}\n",
            json_string(&r.id),
            r.median_ns,
            r.samples,
            r.iters_per_sample,
            extras,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Extracts the worker count from a thread-sweep benchmark id of the
/// form `…/threads/N` (the convention of this repo's level-validation
/// sweeps). Returns `None` for ids that don't end in such a suffix, so
/// harnesses can annotate only the rows where oversubscription is a
/// meaningful concept.
pub fn requested_threads(id: &str) -> Option<usize> {
    let (prefix, last) = id.rsplit_once('/')?;
    if prefix.ends_with("threads") {
        last.parse().ok()
    } else {
        None
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Passed to benchmark closures to drive timed iterations.
pub struct Bencher {
    samples: usize,
    sample_budget: Duration,
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, reporting the median over several samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a single iteration.
        let est = {
            let start = Instant::now();
            let mut n = 0u64;
            while start.elapsed() < Duration::from_millis(20) && n < 1_000 {
                black_box(routine());
                n += 1;
            }
            start.elapsed().as_secs_f64() / n.max(1) as f64
        };
        let iters =
            ((self.sample_budget.as_secs_f64() / est.max(1e-9)) as u64).clamp(1, 10_000_000);
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        self.result_ns = times[times.len() / 2];
        self.iters = iters;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let est = {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed().as_secs_f64()
        };
        let iters = ((self.sample_budget.as_secs_f64() / est.max(1e-9)) as u64).clamp(1, 100_000);
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed();
            }
            times.push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        self.result_ns = times[times.len() / 2];
        self.iters = iters;
    }
}

fn record(id: String, median_ns: f64, samples: usize, iters: u64) {
    let unit = if median_ns >= 1e6 {
        format!("{:.3} ms", median_ns / 1e6)
    } else if median_ns >= 1e3 {
        format!("{:.3} µs", median_ns / 1e3)
    } else {
        format!("{median_ns:.1} ns")
    };
    println!("{id:<55} time: {unit}/iter  ({samples} samples × {iters} iters)");
    RESULTS.lock().expect("results lock").push(BenchResult {
        id,
        median_ns,
        samples,
        iters_per_sample: iters,
    });
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    times[times.len() / 2]
}

fn run_one<F: FnMut(&mut Bencher)>(id: String, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: samples.max(5),
        sample_budget: Duration::from_millis(5),
        result_ns: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    record(id, bencher.result_ns, bencher.samples, bencher.iters);
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 15 }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; the stand-in ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(id.into_id(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(
            format!("{}/{}", self.name, id.into_id()),
            self.sample_size,
            f,
        );
        self
    }

    /// Times two related routines with **interleaved** samples
    /// (A, B, A, B, …), reporting each arm's median as its own result
    /// row — in that order, setup time excluded, one iteration per
    /// sample.
    ///
    /// The contiguous-block measurement of [`bench_function`] is the
    /// wrong tool for A/B arms whose *ratio* is the deliverable: on a
    /// shared-CPU container the machine drifts over the minutes one
    /// block takes, and the drift lands asymmetrically on whichever arm
    /// ran second. Interleaving puts every pair of samples under the
    /// same instantaneous machine conditions. Meant for arms whose
    /// single iteration is far above timer resolution (milliseconds).
    ///
    /// [`bench_function`]: BenchmarkGroup::bench_function
    #[allow(clippy::too_many_arguments)]
    pub fn bench_pair<I1, O1, S1, R1, I2, O2, S2, R2>(
        &mut self,
        id_a: impl IntoBenchmarkId,
        mut setup_a: S1,
        mut routine_a: R1,
        id_b: impl IntoBenchmarkId,
        mut setup_b: S2,
        mut routine_b: R2,
    ) -> &mut Self
    where
        S1: FnMut() -> I1,
        R1: FnMut(I1) -> O1,
        S2: FnMut() -> I2,
        R2: FnMut(I2) -> O2,
    {
        // One untimed warm-up of each arm (first-touch page faults,
        // lazily grown scratch, branch predictors).
        black_box(routine_a(setup_a()));
        black_box(routine_b(setup_b()));
        let samples = self.sample_size.max(5);
        let mut times_a: Vec<f64> = Vec::with_capacity(samples);
        let mut times_b: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup_a();
            let start = Instant::now();
            black_box(routine_a(input));
            times_a.push(start.elapsed().as_secs_f64() * 1e9);
            let input = setup_b();
            let start = Instant::now();
            black_box(routine_b(input));
            times_b.push(start.elapsed().as_secs_f64() * 1e9);
        }
        record(
            format!("{}/{}", self.name, id_a.into_id()),
            median(times_a),
            samples,
            1,
        );
        record(
            format!("{}/{}", self.name, id_b.into_id()),
            median(times_b),
            samples,
            1,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            format!("{}/{}", self.name, id.into_id()),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Declares a benchmark group function running the listed targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
                $crate::write_json_snapshot(&path, &[])
                    .unwrap_or_else(|e| eprintln!("snapshot write failed: {e}"));
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_collects() {
        let mut c = Criterion::default();
        c.sample_size(5);
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
        let results = collected_results();
        assert!(results.iter().any(|r| r.id == "noop_add"));
        assert!(results.iter().any(|r| r.id == "grouped/4"));
        assert!(results.iter().all(|r| r.median_ns >= 0.0));
    }

    #[test]
    fn bench_pair_interleaves_and_records_both_arms() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("paired");
        group.sample_size(5);
        let log = std::cell::RefCell::new(Vec::new());
        group.bench_pair(
            "a",
            || (),
            |_| log.borrow_mut().push('a'),
            "b",
            || (),
            |_| log.borrow_mut().push('b'),
        );
        group.finish();
        // Warm-up pair + 5 interleaved sample pairs, strictly A,B,A,B…
        let order: String = log.borrow().iter().collect();
        assert_eq!(order, "abababababab");
        let results = collected_results();
        let a = results.iter().find(|r| r.id == "paired/a").expect("arm a");
        let b = results.iter().find(|r| r.id == "paired/b").expect("arm b");
        assert_eq!(a.samples, 5);
        assert_eq!(b.iters_per_sample, 1);
        assert!(a.median_ns >= 0.0 && b.median_ns >= 0.0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn context_values_render_typed() {
        assert_eq!(ContextValue::from(4usize).render(), "4");
        assert_eq!(ContextValue::Num(1.5).render(), "1.5");
        assert_eq!(ContextValue::from(true).render(), "true");
        assert_eq!(ContextValue::from("x").render(), "\"x\"");
    }

    #[test]
    fn requested_threads_parses_sweep_ids() {
        assert_eq!(requested_threads("level/uniform/arity1/threads/4"), Some(4));
        assert_eq!(requested_threads("threads/16"), Some(16));
        assert_eq!(requested_threads("level/arity2/cache/threads/2"), Some(2));
        assert_eq!(requested_threads("noop_add"), None);
        assert_eq!(requested_threads("level/threads/x"), None);
        assert_eq!(requested_threads("level/samples/8"), None);
    }

    #[test]
    fn report_writes_numbers_and_row_extras() {
        let mut c = Criterion::default();
        c.sample_size(5);
        c.bench_function("report_probe", |b| b.iter(|| black_box(1u64) + 1));
        let path = std::env::temp_dir().join("criterion_report_test.json");
        let path = path.to_str().expect("utf-8 temp path");
        write_json_report(path, &[("available_cores", 2usize.into())], &|r| {
            if r.id == "report_probe" {
                vec![("oversubscribed".to_string(), true.into())]
            } else {
                Vec::new()
            }
        })
        .expect("write report");
        let text = std::fs::read_to_string(path).expect("read back");
        assert!(text.contains("\"available_cores\": 2"), "{text}");
        assert!(!text.contains("\"available_cores\": \"2\""));
        assert!(text.contains("\"oversubscribed\": true"));
        let _ = std::fs::remove_file(path);
    }
}
