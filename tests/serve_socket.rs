//! The socket transport must be *transparent*: serving the same
//! workload over `--listen` and over stdin/stdout leaves bit-identical
//! durable state, at any worker count. On top of that transparency the
//! transport adds supervision the stdin path cannot have — graceful
//! drain with typed `ShuttingDown` notices (code 16), slow-client
//! shedding (code 21), and a crash-safe drain window — each pinned
//! here against the real listener (`dynfd_serve::serve_listener`) and,
//! for the kill test, against the real `dynfd` binary serving a unix
//! socket as a child process.

use dynfd::common::Schema;
use dynfd::core::{DynFd, DynFdConfig};
use dynfd::persist::{wal_path, FdEngine};
use dynfd::relation::DynamicRelation;
use dynfd::serve::wire::{self, Request};
use dynfd::serve::{
    serve_connection, serve_listener, AdmissionPolicy, ListenAddr, RetryPolicy, ServeConfig,
    ServeEngine, SessionClient, TransportConfig, TransportReport,
};
use dynfd_testkit::{tenant_traces, Trace};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 2203;
const TENANTS: usize = 3;

/// A scratch directory under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dynfd-sock-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn engine(workers: usize, root: &Path) -> Arc<ServeEngine> {
    Arc::new(ServeEngine::new(ServeConfig {
        workers,
        queue_capacity: 1024,
        policy: AdmissionPolicy::Block,
        root: Some(root.to_path_buf()),
        ..ServeConfig::default()
    }))
}

/// Runs `serve_listener` on a background thread until `stop` is set,
/// then returns its report and the (now single-owner) engine.
struct Server {
    engine: Arc<ServeEngine>,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<std::io::Result<TransportReport>>,
    sock: PathBuf,
}

impl Server {
    fn start(engine: Arc<ServeEngine>, sock: PathBuf, config: TransportConfig) -> Server {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let addr = ListenAddr::Unix(sock.clone());
            std::thread::spawn(move || {
                serve_listener(&engine, &addr, config, || stop.load(Ordering::SeqCst))
            })
        };
        for _ in 0..400 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(sock.exists(), "listener never bound {}", sock.display());
        Server {
            engine,
            stop,
            handle,
            sock,
        }
    }

    /// Stops the transport and hands back (report, owned engine).
    fn stop(self) -> (TransportReport, ServeEngine) {
        self.stop.store(true, Ordering::SeqCst);
        let report = self
            .handle
            .join()
            .expect("listener thread panicked")
            .expect("serve_listener failed");
        let mut shared = self.engine;
        let engine = loop {
            match Arc::try_unwrap(shared) {
                Ok(e) => break e,
                Err(s) => {
                    shared = s;
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        (report, engine)
    }
}

fn session_client(sock: &Path, tag: &str) -> SessionClient {
    SessionClient::new(
        ListenAddr::Unix(sock.to_path_buf()),
        format!("test-{tag}"),
        RetryPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
            seed: SEED,
            ..RetryPolicy::default()
        },
    )
    .with_patience(Duration::from_millis(500))
}

/// Pushes every tenant's batches round-robin interleaved through a
/// session client; every apply must ack cleanly.
fn drive_workload(client: &mut SessionClient, traces: &[(String, Trace)]) -> u64 {
    for (name, trace) in traces {
        let resp = client
            .open(name, trace.schema.columns(), &trace.initial_rows)
            .unwrap_or_else(|e| panic!("open {name}: {e}"));
        assert!(
            resp.code == 0 || u32::from(resp.code) == 15,
            "open {name}: code {} ({})",
            resp.code,
            resp.detail
        );
    }
    let mut streams: Vec<(&str, std::vec::IntoIter<dynfd::relation::Batch>)> = traces
        .iter()
        .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
        .collect();
    let mut batches = 0u64;
    loop {
        let mut any = false;
        for (name, stream) in &mut streams {
            let Some(batch) = stream.next() else { continue };
            any = true;
            let resp = client
                .apply(name, &batch, 0)
                .unwrap_or_else(|e| panic!("apply to {name}: {e}"));
            assert_eq!(resp.code, 0, "apply to {name}: {}", resp.detail);
            batches += 1;
        }
        if !any {
            break;
        }
    }
    batches
}

/// The identical workload as raw stdin-protocol frames (unsessioned),
/// in the same per-tenant order.
fn stdin_stream(traces: &[(String, Trace)]) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut request_id = 0u64;
    for (name, trace) in traces {
        request_id += 1;
        let open = Request::Open {
            request_id,
            tenant: name.clone(),
            columns: trace.schema.columns().to_vec(),
            rows: trace.initial_rows.clone(),
        };
        wire::write_frame(&mut bytes, &wire::encode_request(&open)).expect("encode open");
    }
    let mut streams: Vec<(&str, std::vec::IntoIter<dynfd::relation::Batch>)> = traces
        .iter()
        .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
        .collect();
    loop {
        let mut any = false;
        for (name, stream) in &mut streams {
            let Some(batch) = stream.next() else { continue };
            any = true;
            request_id += 1;
            let apply = Request::Apply {
                request_id,
                tenant: name.to_string(),
                deadline_ms: 0,
                session_seq: 0,
                batch,
            };
            wire::write_frame(&mut bytes, &wire::encode_request(&apply)).expect("encode apply");
        }
        if !any {
            break;
        }
    }
    bytes
}

fn read_wal(root: &Path, tenant: &str) -> Vec<u8> {
    std::fs::read(wal_path(&root.join(tenant)))
        .unwrap_or_else(|e| panic!("read WAL of {tenant}: {e}"))
}

#[test]
fn socket_and_stdin_transports_write_identical_wal_bytes() {
    // The transport-transparency claim, at the strongest level: the
    // durable log a socket-served engine writes is byte-for-byte what
    // the stdin-served engine writes for the same workload — at one,
    // two, and eight workers.
    let traces = tenant_traces(SEED, TENANTS);
    for workers in [1usize, 2, 8] {
        let scratch = Scratch::new(&format!("det-{workers}"));
        let sock_root = scratch.0.join("sock-root");
        let stdin_root = scratch.0.join("stdin-root");

        let server = Server::start(
            engine(workers, &sock_root),
            scratch.0.join("s.sock"),
            TransportConfig::default(),
        );
        let mut client = session_client(&server.sock, &format!("det-{workers}"));
        let batches = drive_workload(&mut client, &traces);
        assert!(batches > 0);
        client.disconnect();
        let (report, engine) = server.stop();
        assert_eq!(report.sessions, 1, "one session formed");
        let shutdown = engine.shutdown();
        assert_eq!(shutdown.synced, shutdown.tenants);

        let stdin_engine = engine_for(workers, &stdin_root);
        let input = std::io::Cursor::new(stdin_stream(&traces));
        serve_connection(&stdin_engine, input, Vec::new(), || false);
        let stdin_engine = unwrap_engine(stdin_engine);
        let shutdown = stdin_engine.shutdown();
        assert_eq!(shutdown.synced, shutdown.tenants);

        for (name, _) in &traces {
            assert_eq!(
                read_wal(&sock_root, name),
                read_wal(&stdin_root, name),
                "tenant {name}: socket and stdin WAL bytes diverge at {workers} workers"
            );
        }
    }
}

fn engine_for(workers: usize, root: &Path) -> Arc<ServeEngine> {
    engine(workers, root)
}

fn unwrap_engine(mut shared: Arc<ServeEngine>) -> ServeEngine {
    loop {
        match Arc::try_unwrap(shared) {
            Ok(e) => break e,
            Err(s) => {
                shared = s;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

#[test]
fn drain_notifies_connected_clients_with_code_16_and_syncs_wal() {
    let scratch = Scratch::new("drain");
    let root = scratch.0.join("root");
    let traces = tenant_traces(SEED, 1);
    let (name, trace) = &traces[0];
    let server = Server::start(
        engine(2, &root),
        scratch.0.join("s.sock"),
        TransportConfig::default(),
    );

    // A raw protocol client that stays connected across the drain.
    let mut stream = UnixStream::connect(&server.sock).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let send = |stream: &mut UnixStream, req: &Request| {
        wire::write_frame(stream, &wire::encode_request(req)).expect("send frame");
    };
    send(
        &mut stream,
        &Request::Hello {
            request_id: 1,
            session_id: "drain-client".into(),
        },
    );
    send(
        &mut stream,
        &Request::Open {
            request_id: 2,
            tenant: name.clone(),
            columns: trace.schema.columns().to_vec(),
            rows: trace.initial_rows.clone(),
        },
    );
    let batches = trace.to_batches();
    let applied = 2usize.min(batches.len());
    for (i, batch) in batches.iter().take(applied).enumerate() {
        send(
            &mut stream,
            &Request::Apply {
                request_id: 3 + i as u64,
                tenant: name.clone(),
                deadline_ms: 0,
                session_seq: 1 + i as u64,
                batch: batch.clone(),
            },
        );
    }
    // Hello ack + open ack + one ack per apply.
    for _ in 0..2 + applied {
        let payload = wire::read_frame(&mut stream)
            .expect("read ack")
            .expect("ack before EOF");
        let resp = wire::decode_response(&payload).expect("decode ack");
        assert!(
            resp.code == 0 || u32::from(resp.code) == 15,
            "ack carried code {}: {}",
            resp.code,
            resp.detail
        );
    }

    // Drain while the client is still connected: it must receive the
    // typed ShuttingDown notice (code 16, request id 0), then EOF.
    server.stop.store(true, Ordering::SeqCst);
    let notice = wire::read_frame(&mut stream)
        .expect("read notice")
        .expect("notice before EOF");
    let notice = wire::decode_response(&notice).expect("decode notice");
    assert_eq!(notice.request_id, 0, "drain notice is unsolicited");
    assert_eq!(u32::from(notice.code), 16, "drain notice carries code 16");
    assert_eq!(
        wire::read_frame(&mut stream).expect("read EOF"),
        None,
        "connection closes after the notice"
    );

    let (report, engine) = server.stop();
    assert_eq!(report.connections, 1);
    let shutdown = engine.shutdown();
    assert_eq!(shutdown.synced, shutdown.tenants, "WAL tails synced");

    // Every acknowledged batch survived the drain durably.
    let (recovered, _) =
        FdEngine::recover_with_config(&root.join(name), DynFdConfig::default()).expect("recover");
    assert_eq!(recovered.seq() as usize, applied, "acked prefix durable");
}

#[test]
fn slow_reader_is_shed_and_bystanders_are_unharmed() {
    let scratch = Scratch::new("shed");
    let root = scratch.0.join("root");
    let traces = tenant_traces(SEED, 1);
    let (name, trace) = &traces[0];
    // A tiny outbox and a short write timeout make the shed fast once
    // the kernel socket buffer is full.
    let server = Server::start(
        engine(2, &root),
        scratch.0.join("s.sock"),
        TransportConfig {
            outbox: 4,
            write_timeout: Duration::from_millis(200),
            ..TransportConfig::default()
        },
    );

    // The slow reader: floods requests that each produce an immediate
    // typed error response (unknown tenant), and never reads a byte.
    // Responses pile into the kernel buffer, then the writer blocks,
    // then the 4-slot outbox overflows — the shed.
    let mut slow = UnixStream::connect(&server.sock).expect("connect slow");
    let ghost = wire::encode_request(&Request::Close {
        request_id: 9,
        tenant: "ghost".into(),
    });
    let mut framed = Vec::new();
    wire::write_frame(&mut framed, &ghost).expect("frame");
    let mut sent = 0u64;
    for _ in 0..40_000 {
        match slow.write_all(&framed) {
            Ok(()) => sent += 1,
            // The server dooms the connection and closes the socket:
            // exactly the contract under test.
            Err(_) => break,
        }
    }
    assert!(sent > 0);

    // A well-behaved client on the same transport, while the slow one
    // is being shed: full workload, every ack clean.
    let mut client = session_client(&server.sock, "shed-bystander");
    let resp = client
        .open(name, trace.schema.columns(), &trace.initial_rows)
        .expect("open bystander");
    assert_eq!(resp.code, 0, "{}", resp.detail);
    for batch in trace.to_batches() {
        let resp = client.apply(name, &batch, 0).expect("apply bystander");
        assert_eq!(resp.code, 0, "{}", resp.detail);
    }
    drop(slow);
    client.disconnect();

    let (report, engine) = server.stop();
    assert!(
        report.slow_client_sheds >= 1,
        "the flooding client must be shed (report: {report:?})"
    );
    // The bystander's durable state is exactly its sequential replay.
    let seq = {
        let shutdown_engine = &engine;
        shutdown_engine.tenant_seq(name).expect("seq")
    };
    assert_eq!(seq as usize, trace.to_batches().len());
    let shutdown = engine.shutdown();
    assert_eq!(shutdown.synced, shutdown.tenants);
}

/// Fresh sequential replay of `prefix` batches from the wire-faithful
/// starting relation (the server names the schema after the tenant).
fn fresh_prefix(name: &str, trace: &Trace, prefix: usize) -> DynFd {
    let schema = Schema::new(name.to_string(), trace.schema.columns().to_vec());
    let rel = DynamicRelation::from_rows(schema, &trace.initial_rows).expect("relation");
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());
    for batch in trace.to_batches().iter().take(prefix) {
        dynfd.apply_batch(batch).expect("oracle apply");
    }
    dynfd
}

#[test]
fn drain_kill_in_the_socket_server_leaves_every_tenant_recoverable() {
    // The crash window the transport adds: a client queues a backlog
    // over the socket, asks for shutdown, and the server process is
    // killed *inside* the drain (after `kill_after` more jobs complete,
    // via the hidden --drain-kill-after hook). Every tenant directory
    // must recover to a bit-identical replay of its durable prefix.
    let kill_after = 2u64;
    let scratch = Scratch::new("kill");
    let root = scratch.0.join("root");
    let sock = scratch.0.join("s.sock");
    let traces = tenant_traces(SEED, TENANTS);

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_dynfd"))
        .args([
            "serve",
            "--multi",
            "--listen",
            sock.to_str().expect("utf8 sock path"),
            "--root",
            root.to_str().expect("utf8 root path"),
            "--block",
            "--queue",
            "1024",
            "--workers",
            "2",
            "--start-paused",
            "--drain-kill-after",
            &kill_after.to_string(),
        ])
        .stdin(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn dynfd serve --multi --listen");
    for _ in 0..400 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(sock.exists(), "child never bound its socket");

    // Queue the whole backlog (delivery is paused: nothing applies
    // yet), then request shutdown. The drain resumes delivery with the
    // kill budget armed — the abort lands mid-drain.
    let mut stream = UnixStream::connect(&sock).expect("connect child");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut request_id = 0u64;
    for (name, trace) in &traces {
        request_id += 1;
        let open = Request::Open {
            request_id,
            tenant: name.clone(),
            columns: trace.schema.columns().to_vec(),
            rows: trace.initial_rows.clone(),
        };
        wire::write_frame(&mut stream, &wire::encode_request(&open)).expect("send open");
        let payload = wire::read_frame(&mut stream)
            .expect("read open ack")
            .expect("open ack");
        let resp = wire::decode_response(&payload).expect("decode open ack");
        assert_eq!(resp.code, 0, "open {name}: {}", resp.detail);
    }
    let mut total = 0usize;
    let mut streams: Vec<(&str, std::vec::IntoIter<dynfd::relation::Batch>)> = traces
        .iter()
        .map(|(name, trace)| (name.as_str(), trace.to_batches().into_iter()))
        .collect();
    loop {
        let mut any = false;
        for (name, stream_iter) in &mut streams {
            let Some(batch) = stream_iter.next() else {
                continue;
            };
            any = true;
            request_id += 1;
            total += 1;
            let apply = Request::Apply {
                request_id,
                tenant: name.to_string(),
                deadline_ms: 0,
                session_seq: 0,
                batch,
            };
            wire::write_frame(&mut stream, &wire::encode_request(&apply)).expect("send apply");
        }
        if !any {
            break;
        }
    }
    request_id += 1;
    wire::write_frame(
        &mut stream,
        &wire::encode_request(&Request::Shutdown { request_id }),
    )
    .expect("send shutdown");
    drop(stream);

    let status = child.wait().expect("wait for child");
    assert!(
        !status.success(),
        "the drain kill must abort the child (it exited cleanly)"
    );

    // Recover every tenant: a durable prefix, bit-identical to a fresh
    // replay of that prefix, and at least `kill_after` jobs total made
    // it to disk (a job is durable before its completion is counted).
    let mut durable_jobs = 0u64;
    for (name, trace) in &traces {
        let (recovered, _) =
            FdEngine::recover_with_config(&root.join(name), DynFdConfig::default())
                .unwrap_or_else(|e| panic!("recover {name}: {e}"));
        let prefix = recovered.seq() as usize;
        assert!(
            prefix <= trace.to_batches().len(),
            "{name} recovered past its stream"
        );
        durable_jobs += prefix as u64;
        let oracle = fresh_prefix(name, trace, prefix);
        assert_eq!(
            oracle.logical_divergence(recovered.dynfd()),
            None,
            "{name} must equal a fresh replay of its durable prefix"
        );
    }
    assert!(
        durable_jobs >= kill_after,
        "budget {kill_after}, only {durable_jobs} durable"
    );
    assert!(
        (durable_jobs as usize) < total,
        "the kill must land mid-drain, not after it"
    );
}

mod exactly_once {
    use super::Scratch;
    use dynfd_testkit::{check_net, NetFault};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The session-resume contract, seed-randomized: under any
        /// injected network fault (delays, torn writes, duplicated
        /// frames, half-open connections, mid-stream kills), a
        /// compliant [`SessionClient`] lands every batch exactly once —
        /// tenant state and WAL bytes bit-identical to a clean
        /// sequential run.
        #[test]
        fn every_batch_lands_exactly_once_under_network_faults(
            seed in 0u64..1_000_000,
            fault_idx in 0usize..NetFault::ALL.len(),
            workers_idx in 0usize..3,
        ) {
            let fault = NetFault::ALL[fault_idx];
            let workers = [1usize, 2, 8][workers_idx];
            let scratch = Scratch::new(&format!("prop-{seed}-{fault_idx}-{workers_idx}"));
            let stats = check_net(fault, seed, workers, &scratch.0)
                .map_err(TestCaseError::fail)?;
            prop_assert_eq!(stats.states_compared, stats.tenants);
            prop_assert_eq!(stats.wals_compared, stats.tenants);
            prop_assert!(stats.batches > 0);
        }
    }
}
