//! # dynfd-bench
//!
//! Benchmark harness regenerating every table and figure of the DynFD
//! evaluation (paper Section 6):
//!
//! | Paper artifact | Harness experiment |
//! |---|---|
//! | Table 3 — dataset characteristics | [`experiments::table3`] |
//! | Table 4 — runtime / throughput / percentiles | [`experiments::table4`] |
//! | Figure 5 — per-batch runtimes on `single` | [`experiments::fig5`] |
//! | Figure 6 — average runtime vs. batch size | [`experiments::fig6`] |
//! | Figure 7 — speedup vs. repeated HyFD | [`experiments::fig7`] |
//! | Figures 8/9 — pruning-strategy ablations | [`experiments::figs8_9`] |
//! | Figures 10/11 — ablations vs. batch size | [`experiments::figs10_11`] |
//!
//! Run `cargo run --release -p dynfd-bench --bin experiments -- all` to
//! regenerate everything; results are printed as tables and written as
//! CSV under `EXPERIMENTS-results/`. Criterion micro-benches for the hot
//! kernels live in `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod strategies;

/// Sample count for the criterion micro-benches: `DYNFD_BENCH_SAMPLES`
/// overrides the given default so CI smoke runs can trade precision for
/// wall time without a separate bench profile. Unset, unparsable, or
/// zero values fall back to `default`.
pub fn bench_samples(default: usize) -> usize {
    std::env::var("DYNFD_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}
