//! HyFD's progressive record-pair sampler.
//!
//! Comparing all record pairs is quadratic; HyFD instead compares only
//! *promising* pairs: records that share a PLI cluster (they agree on at
//! least that attribute) and are close under a similarity sort (records
//! sorted by their full compressed signature, so near neighbors tend to
//! share many values). Windows over the sorted clusters grow
//! progressively — distance 1 first, then 2, … — and attributes compete:
//! the attribute whose last round produced the most new non-FDs per
//! comparison runs next, until the best efficiency falls below a
//! threshold.

use super::HyFdStats;
use dynfd_common::{AttrSet, RecordId};
use dynfd_lattice::FdTree;
use dynfd_relation::{agree_set, DynamicRelation};

/// Progressive cluster-window sampler.
#[derive(Clone, Debug)]
pub struct Sampler {
    /// Per attribute: its non-singleton clusters, members sorted by
    /// compressed signature (similarity sort).
    clusters: Vec<Vec<Vec<RecordId>>>,
    /// Per attribute: the next window distance to run (1-based).
    window: Vec<usize>,
    /// Per attribute: efficiency of the last round (`f64::INFINITY`
    /// before the first round, `-1.0` when exhausted).
    efficiency: Vec<f64>,
}

impl Sampler {
    /// Prepares the sampler: snapshots and similarity-sorts the PLI
    /// clusters of every attribute.
    pub fn new(rel: &DynamicRelation) -> Self {
        let arity = rel.arity();
        let mut clusters = Vec::with_capacity(arity);
        for a in 0..arity {
            let mut per_attr: Vec<Vec<RecordId>> = Vec::new();
            for (_, cluster) in rel.pli(a).iter_non_singleton() {
                // Clusters hold arena slots; the sampler works on record
                // ids (stable across slot churn while it runs).
                let mut c: Vec<RecordId> = cluster.iter().map(|&s| rel.rid_at_slot(s)).collect();
                // Similarity sort: lexicographic by compressed record
                // brings records with many common values next to each
                // other, making window-1 neighbors high-yield pairs.
                c.sort_by(|&x, &y| {
                    rel.compressed(x)
                        .expect("live")
                        .cmp(&rel.compressed(y).expect("live"))
                });
                per_attr.push(c);
            }
            clusters.push(per_attr);
        }
        Sampler {
            window: vec![1; arity],
            efficiency: vec![f64::INFINITY; arity],
            clusters,
        }
    }

    /// Whether any attribute still has rounds to run.
    pub fn exhausted(&self) -> bool {
        self.efficiency.iter().all(|&e| e < 0.0)
    }

    /// Runs sampling rounds until the best attribute's efficiency drops
    /// below `threshold` (or everything is exhausted). Newly discovered
    /// non-FDs are inserted into `neg`; the distinct agree sets that
    /// contributed at least one new cover entry are returned so the
    /// caller can mirror them into a positive cover under maintenance.
    pub fn run(
        &mut self,
        rel: &DynamicRelation,
        neg: &mut FdTree,
        threshold: f64,
        stats: &mut HyFdStats,
    ) -> Vec<AttrSet> {
        let arity = rel.arity();
        let mut fresh: Vec<AttrSet> = Vec::new();
        // An infinite threshold disables sampling outright (used to force
        // validation-only discovery in tests and ablations).
        while threshold.is_finite() {
            // Best attribute by last efficiency; ties break to the
            // smaller index for determinism.
            let Some(attr) = (0..arity)
                .filter(|&a| self.efficiency[a] >= 0.0)
                .max_by(|&a, &b| {
                    self.efficiency[a]
                        .partial_cmp(&self.efficiency[b])
                        .expect("efficiencies are never NaN")
                        .then(b.cmp(&a))
                })
            else {
                break; // all attributes exhausted
            };
            if self.efficiency[attr] < threshold {
                break; // even the best candidate is not worth a round
            }
            let dist = self.window[attr];
            self.window[attr] += 1;

            let mut comparisons = 0usize;
            let mut new_non_fds = 0usize;
            let mut window_applies = false;
            for cluster in &self.clusters[attr] {
                if cluster.len() <= dist {
                    continue;
                }
                window_applies = true;
                for i in 0..cluster.len() - dist {
                    let (x, y) = (cluster[i], cluster[i + dist]);
                    comparisons += 1;
                    let agree = agree_set(rel, x, y).expect("live records");
                    if agree.len() == arity {
                        continue; // duplicate records witness nothing
                    }
                    let mut contributed = false;
                    for rhs in 0..arity {
                        if !agree.contains(rhs) && neg.add_maximal_evicting(agree, rhs) {
                            new_non_fds += 1;
                            contributed = true;
                        }
                    }
                    if contributed {
                        fresh.push(agree);
                    }
                }
            }
            stats.comparisons += comparisons;
            stats.sampling_rounds += 1;
            // Exhausted when no cluster is large enough any more (and
            // hence no comparison happened).
            self.efficiency[attr] = if !window_applies || comparisons == 0 {
                -1.0
            } else {
                new_non_fds as f64 / comparisons as f64
            };
        }
        fresh.sort_unstable();
        fresh.dedup();
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{paper_relation, random_relation};
    use dynfd_common::Fd;
    use dynfd_relation::validate_fd;
    use dynfd_relation::ValidationOptions;

    #[test]
    fn sampler_finds_real_non_fds() {
        let rel = paper_relation();
        let mut sampler = Sampler::new(&rel);
        let mut neg = FdTree::new();
        let mut stats = HyFdStats::default();
        sampler.run(&rel, &mut neg, 0.0, &mut stats);
        assert!(stats.comparisons > 0);
        assert!(!neg.is_empty());
        // Every entry of the negative cover must be a genuine non-FD.
        for nf in neg.all_fds() {
            assert!(
                !validate_fd(&rel, &nf, &ValidationOptions::full()).is_valid(),
                "sampler produced a false non-FD {nf:?}"
            );
        }
    }

    #[test]
    fn threshold_zero_exhausts_all_windows() {
        let rel = paper_relation();
        let mut sampler = Sampler::new(&rel);
        let mut neg = FdTree::new();
        let mut stats = HyFdStats::default();
        sampler.run(&rel, &mut neg, 0.0, &mut stats);
        assert!(sampler.exhausted());
        // With every in-cluster pair compared, the negative cover is the
        // full FDEP cover restricted to pairs sharing a value — for this
        // dataset that is all violating pairs, so it equals FDEP's.
        let fdep_neg = crate::fdep::negative_cover(&rel);
        for nf in neg.all_fds() {
            assert!(
                fdep_neg.contains_specialization(nf.lhs, nf.rhs),
                "{nf:?} not implied by the exhaustive cover"
            );
        }
    }

    #[test]
    fn infinite_threshold_runs_nothing() {
        let rel = random_relation(1, 30, 4, 3);
        let mut sampler = Sampler::new(&rel);
        let mut neg = FdTree::new();
        let mut stats = HyFdStats::default();
        let fresh = sampler.run(&rel, &mut neg, f64::INFINITY, &mut stats);
        assert_eq!(stats.comparisons, 0);
        assert!(neg.is_empty());
        assert!(fresh.is_empty());
    }

    #[test]
    fn fresh_agree_sets_are_reported_once() {
        let rel = paper_relation();
        let mut sampler = Sampler::new(&rel);
        let mut neg = FdTree::new();
        let mut stats = HyFdStats::default();
        let fresh = sampler.run(&rel, &mut neg, 0.0, &mut stats);
        let mut dedup = fresh.clone();
        dedup.dedup();
        assert_eq!(fresh, dedup);
        for x in &fresh {
            // Each reported agree set must be a real agree set of some
            // record pair — verify it is consistent with the relation by
            // checking the corresponding non-FDs exist or are implied.
            for rhs in 0..rel.arity() {
                if !x.contains(rhs) {
                    assert!(
                        !validate_fd(&rel, &Fd::new(*x, rhs), &ValidationOptions::full())
                            .is_valid(),
                        "reported agree set {x:?} -> {rhs} is not a non-FD"
                    );
                }
            }
        }
    }
}
