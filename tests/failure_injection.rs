//! Failure-injection and degenerate-input tests across the public API:
//! malformed batches, pathological schemas, and boundary conditions must
//! fail cleanly (typed errors, untouched state) — never panic or
//! corrupt covers.

use dynfd::common::{AttrSet, DynError, Fd, RecordId, Schema};
use dynfd::core::{DynFd, DynFdConfig, DynFdError};
use dynfd::lattice::io::{read_cover, write_cover};
use dynfd::relation::{parse_csv, Batch, ChangeOp, DynamicRelation};

fn people() -> DynamicRelation {
    DynamicRelation::from_rows(
        Schema::of("people", &["first", "last", "zip", "city"]),
        &[
            vec!["Max", "Jones", "14482", "Potsdam"],
            vec!["Max", "Miller", "14482", "Potsdam"],
            vec!["Anna", "Scott", "13591", "Berlin"],
        ],
    )
    .unwrap()
}

#[test]
fn unknown_record_in_batch_is_atomic() {
    let mut dynfd = DynFd::new(people(), DynFdConfig::default());
    let before_fds = dynfd.minimal_fds();
    let before_neg = dynfd.negative_cover().clone();
    let mut batch = Batch::new();
    batch
        .insert(vec!["Eve", "Stone", "10999", "Berlin"])
        .update(RecordId(1), vec!["Max", "Miller", "10115", "Berlin"])
        .delete(RecordId(4711));
    let err = dynfd.apply_batch(&batch).unwrap_err();
    assert_eq!(err, DynFdError::UnknownRecord(RecordId(4711)));
    assert_eq!(err.exit_code(), 5);
    assert!(err.is_rejection());
    assert_eq!(dynfd.minimal_fds(), before_fds, "positive cover untouched");
    assert_eq!(
        dynfd.negative_cover(),
        &before_neg,
        "negative cover untouched"
    );
    assert_eq!(dynfd.relation().len(), 3, "relation untouched");
    dynfd.verify_consistency().unwrap();
}

#[test]
fn arity_mismatch_in_batch_is_atomic() {
    let mut dynfd = DynFd::new(people(), DynFdConfig::default());
    let mut batch = Batch::new();
    batch.insert(vec!["only", "three", "fields"]);
    let err = dynfd.apply_batch(&batch).unwrap_err();
    assert_eq!(
        err,
        DynFdError::ArityMismatch {
            expected: 4,
            actual: 3
        }
    );
    assert_eq!(dynfd.relation().len(), 3);
    dynfd.verify_consistency().unwrap();
}

#[test]
fn double_delete_and_update_after_delete_rejected() {
    let mut dynfd = DynFd::new(people(), DynFdConfig::default());
    let mut batch = Batch::new();
    batch.delete(RecordId(0)).delete(RecordId(0));
    assert!(dynfd.apply_batch(&batch).is_err());

    let mut batch = Batch::new();
    batch
        .delete(RecordId(0))
        .update(RecordId(0), vec!["a", "b", "c", "d"]);
    assert!(dynfd.apply_batch(&batch).is_err());
    assert_eq!(dynfd.relation().len(), 3, "nothing applied");
}

#[test]
fn errors_never_poison_subsequent_batches() {
    let mut dynfd = DynFd::new(people(), DynFdConfig::default());
    let mut bad = Batch::new();
    bad.delete(RecordId(99));
    assert!(dynfd.apply_batch(&bad).is_err());

    // A good batch afterwards behaves normally.
    let mut good = Batch::new();
    good.delete(RecordId(0))
        .insert(vec!["Kim", "Lee", "04109", "Leipzig"]);
    dynfd.apply_batch(&good).unwrap();
    dynfd.verify_consistency().unwrap();
    assert_eq!(
        dynfd.positive_cover(),
        &dynfd::staticfd::tane::discover(dynfd.relation())
    );
}

#[test]
fn draining_the_relation_completely() {
    let mut dynfd = DynFd::new(people(), DynFdConfig::default());
    let mut batch = Batch::new();
    for i in 0..3 {
        batch.delete(RecordId(i));
    }
    let result = dynfd.apply_batch(&batch).unwrap();
    assert!(dynfd.relation().is_empty());
    // Everything holds on the empty relation: ∅ -> A for every column.
    assert_eq!(dynfd.minimal_fds().len(), 4);
    assert!(dynfd.negative_cover().is_empty());
    assert!(!result.added.is_empty());
    dynfd.verify_consistency().unwrap();

    // And the empty relation accepts new life.
    let mut batch = Batch::new();
    batch.insert(vec!["A", "B", "C", "D"]);
    dynfd.apply_batch(&batch).unwrap();
    dynfd.verify_consistency().unwrap();
}

#[test]
fn all_unique_and_all_constant_columns() {
    let rows: Vec<Vec<String>> = (0..10)
        .map(|i| vec![format!("u{i}"), "same".to_string(), format!("w{i}")])
        .collect();
    let rel = DynamicRelation::from_rows(Schema::anonymous("t", 3), &rows).unwrap();
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());
    let fds = dynfd.minimal_fds();
    // Constant column: ∅ -> 1. Unique columns determine each other.
    assert!(fds.contains(&Fd::new(AttrSet::empty(), 1)));
    assert!(fds.contains(&Fd::new(AttrSet::single(0), 2)));
    assert!(fds.contains(&Fd::new(AttrSet::single(2), 0)));

    // Break the constant column.
    let mut batch = Batch::new();
    batch.insert(vec!["u10", "different", "w10"]);
    let result = dynfd.apply_batch(&batch).unwrap();
    assert!(result.removed.contains(&Fd::new(AttrSet::empty(), 1)));
    dynfd.verify_consistency().unwrap();
}

#[test]
fn duplicate_rows_everywhere() {
    let rows = vec![vec!["x", "y"]; 6];
    let rel = DynamicRelation::from_rows(Schema::anonymous("t", 2), &rows).unwrap();
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());
    assert_eq!(dynfd.minimal_fds().len(), 2, "both columns constant");
    let mut batch = Batch::new();
    for i in 0..5 {
        batch.delete(RecordId(i));
    }
    dynfd.apply_batch(&batch).unwrap();
    dynfd.verify_consistency().unwrap();
    assert_eq!(dynfd.minimal_fds().len(), 2);
}

#[test]
fn empty_batches_are_cheap_noops() {
    let mut dynfd = DynFd::new(people(), DynFdConfig::default());
    for _ in 0..3 {
        let result = dynfd.apply_batch(&Batch::new()).unwrap();
        assert!(result.is_unchanged());
        assert_eq!(result.metrics.fd_validations, 0);
        assert_eq!(result.metrics.non_fd_validations, 0);
    }
}

#[test]
fn csv_error_paths() {
    assert!(matches!(parse_csv(""), Err(DynError::Parse(_))));
    assert!(matches!(parse_csv("a,b\n1\n"), Err(DynError::Parse(_))));
    assert!(matches!(
        parse_csv("a\n\"unterminated\n"),
        Err(DynError::Parse(_))
    ));
    assert!(matches!(
        dynfd::relation::read_csv_file("/nonexistent/definitely-missing.csv"),
        Err(DynError::Io(_))
    ));
}

#[test]
fn cover_io_error_paths() {
    let schema = Schema::of("t", &["a", "b"]);
    assert!(read_cover("a => b", &schema).is_err());
    assert!(read_cover("a -> c", &schema).is_err());
    assert!(read_cover("a,b -> b", &schema).is_err());
    // Empty file is a valid empty cover.
    assert!(read_cover("", &schema).unwrap().is_empty());
    // Roundtrip through a handwritten file with comments.
    let fds = read_cover("# persisted cover\na -> b\n", &schema).unwrap();
    assert_eq!(write_cover(&fds, &schema), "a -> b\n");
}

#[test]
fn change_op_stream_with_interleaved_same_batch_references() {
    // Insert then delete the same (future) record id within one batch.
    let mut rel = people();
    let next = rel.next_id();
    let ops = vec![
        ChangeOp::Insert(vec!["T1".into(), "T2".into(), "T3".into(), "T4".into()]),
        ChangeOp::Delete(next),
    ];
    let applied = rel.apply_batch(&Batch::from_ops(ops)).unwrap();
    assert!(applied.inserted.is_empty());
    assert!(applied.deleted.is_empty());
    assert_eq!(rel.len(), 3);
}

#[test]
fn single_row_single_column_corner() {
    let rel = DynamicRelation::from_rows(Schema::anonymous("dot", 1), &[vec!["only"]]).unwrap();
    let mut dynfd = DynFd::new(rel, DynFdConfig::default());
    assert_eq!(dynfd.minimal_fds(), vec![Fd::new(AttrSet::empty(), 0)]);
    let mut batch = Batch::new();
    batch.delete(RecordId(0));
    dynfd.apply_batch(&batch).unwrap();
    assert!(dynfd.relation().is_empty());
    dynfd.verify_consistency().unwrap();
}

#[test]
fn wide_schema_limits() {
    // 256 columns is the AttrSet capacity; construction must work.
    let schema = Schema::anonymous("wide", 256);
    assert_eq!(schema.arity(), 256);
    let rel = DynamicRelation::new(schema);
    assert_eq!(rel.arity(), 256);
}

#[test]
#[should_panic(expected = "at most 256 supported")]
fn beyond_attrset_capacity_panics_loudly() {
    let _ = Schema::anonymous("too-wide", 257);
}
