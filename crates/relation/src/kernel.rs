//! Shared sorted-set intersection kernel: an explicitly SIMD block-compare
//! path (SSE2 4-lane / AVX2 8-lane, `std::arch` x86_64 intrinsics) over a
//! scalar merge fallback, selected once at startup by runtime feature
//! detection.
//!
//! The primitive intersects two strictly-increasing `u32` *key* sequences
//! and emits, for every common key, the `a`-side *payload* at that key's
//! position. [`crate::intersect_clusters`] drives it with record ids as
//! keys and arena slots as payloads; the validator's sampling prober and
//! the PLI-cache refinement helpers reuse the same entry points, so every
//! hot intersection in the system runs through one kernel.
//!
//! The block-compare algorithm is the classic rotation scheme for sorted
//! u32 sets: load one L-lane block from each side, compare the `a` block
//! against all L lane-rotations of the `b` block, OR the equality masks
//! into a per-lane hit mask, compact the hit payloads, then advance the
//! side whose block maximum is smaller (both on a tie). Both inputs are
//! strictly increasing, so a key matched in one round cannot reappear in
//! a later `b` block and no duplicate is ever emitted. The scalar merge
//! finishes the sub-L tails.
//!
//! Selection is observationally pure: every kernel produces bit-identical
//! output, so the `simd` config knob and the runtime-detected tier change
//! throughput only. The equivalence proptests (in-crate and
//! `tests/proptest_kernel.rs`) pin that contract.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Size ratio above which [`crate::intersect_clusters`] abandons the
/// linear merge and *gallops*: when `large.len() / GALLOP_RATIO >=
/// small.len()`, each small-side member binary-searches the large side
/// with exponentially growing probes — O(small · log large) instead of
/// O(small + large). The boundary test in `pli.rs` pins that sizes at
/// ratios straddling this constant agree with the plain merge.
pub const GALLOP_RATIO: usize = 8;

/// Whether an intersection of these sizes should gallop instead of
/// merging linearly — the one place the [`GALLOP_RATIO`] tunable is
/// consulted.
pub fn use_gallop(small_len: usize, large_len: usize) -> bool {
    large_len / GALLOP_RATIO >= small_len
}

/// Minimum per-side length for the SIMD path. Below this the fixed
/// overhead (key gather + block setup) cannot amortize, so callers fall
/// back to the scalar merge and small intersections never regress.
pub const SIMD_MIN_LEN: usize = 16;

/// Which intersection kernel a call dispatches to. Ordered by strength:
/// stronger tiers require strictly more CPU features.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelKind {
    /// Portable scalar merge (also the non-x86_64 and `simd = false` path).
    #[default]
    Scalar,
    /// 4-lane SSE2 block compare (x86_64 baseline, no detection needed).
    Sse,
    /// 8-lane AVX2 block compare (runtime-detected).
    Avx2,
}

impl KernelKind {
    /// Human-readable kernel name for `--stats` and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Sse => "sse2",
            KernelKind::Avx2 => "avx2",
        }
    }

    /// Number of `u32` lanes one block-compare step covers per side
    /// (1 for the scalar merge).
    pub fn lanes(self) -> usize {
        match self {
            KernelKind::Scalar => 1,
            KernelKind::Sse => 4,
            KernelKind::Avx2 => 8,
        }
    }
}

/// Process-wide SIMD enable switch, driven by `DynFdConfig::simd`.
///
/// All kernels produce bit-identical output, so flipping this concurrently
/// with running validations is harmless — it only changes which code path
/// computes the same result.
static SIMD_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables the SIMD paths process-wide (`simd` config knob).
pub fn set_simd_enabled(enabled: bool) {
    SIMD_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the SIMD paths are currently enabled.
pub fn simd_enabled() -> bool {
    SIMD_ENABLED.load(Ordering::Relaxed)
}

/// The strongest kernel this CPU supports, detected once at first use.
pub fn detected_kernel() -> KernelKind {
    static DETECTED: OnceLock<KernelKind> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                KernelKind::Avx2
            } else {
                // SSE2 is part of the x86_64 baseline ABI.
                KernelKind::Sse
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            KernelKind::Scalar
        }
    })
}

/// The kernel calls actually dispatch to: the detected tier, or
/// [`KernelKind::Scalar`] when SIMD is disabled by config.
pub fn active_kernel() -> KernelKind {
    if simd_enabled() {
        detected_kernel()
    } else {
        KernelKind::Scalar
    }
}

/// Intersects two strictly-increasing `u32` key sequences, pushing
/// `a_vals[i]` (in key order) for every position `i` whose key also
/// occurs in `b_keys`. `a_keys` and `a_vals` run in lockstep and must
/// have equal length.
pub fn intersect_keyed(a_keys: &[u32], a_vals: &[u32], b_keys: &[u32], out: &mut Vec<u32>) {
    intersect_keyed_with(active_kernel(), a_keys, a_vals, b_keys, out);
}

/// [`intersect_keyed`] with an explicit kernel choice, clamped to what
/// the CPU supports — the equivalence tests drive every tier through
/// this entry point and compare outputs.
pub fn intersect_keyed_with(
    kind: KernelKind,
    a_keys: &[u32],
    a_vals: &[u32],
    b_keys: &[u32],
    out: &mut Vec<u32>,
) {
    debug_assert_eq!(a_keys.len(), a_vals.len());
    // Never dispatch above the detected tier: an explicit `Avx2` request
    // on a non-AVX2 CPU silently runs the strongest safe kernel instead.
    let kind = kind.min(detected_kernel());
    match kind {
        KernelKind::Scalar => scalar_merge_keyed(a_keys, a_vals, b_keys, 0, 0, out),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Sse => x86::sse_intersect(a_keys, a_vals, b_keys, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` survives the clamp above only when AVX2 was
        // runtime-detected on this CPU.
        KernelKind::Avx2 => unsafe { x86::avx2_intersect(a_keys, a_vals, b_keys, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar_merge_keyed(a_keys, a_vals, b_keys, 0, 0, out),
    }
}

/// Scalar keyed merge from positions `(i, j)` onward — both the portable
/// fallback and the tail finisher for the block-compare paths.
fn scalar_merge_keyed(
    a_keys: &[u32],
    a_vals: &[u32],
    b_keys: &[u32],
    mut i: usize,
    mut j: usize,
    out: &mut Vec<u32>,
) {
    while i < a_keys.len() && j < b_keys.len() {
        let (ka, kb) = (a_keys[i], b_keys[j]);
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a_vals[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// `compact[mask]` lists, front-packed, the lane indices whose bit is
    /// set in `mask` — the shuffle control for compacting hit payloads
    /// with `_mm256_permutevar8x32_epi32`. Unused tail lanes stay 0; the
    /// store only keeps `mask.count_ones()` lanes.
    const fn avx2_compact_lut() -> [[u32; 8]; 256] {
        let mut lut = [[0u32; 8]; 256];
        let mut mask = 0usize;
        while mask < 256 {
            let mut dst = 0usize;
            let mut lane = 0usize;
            while lane < 8 {
                if mask & (1 << lane) != 0 {
                    lut[mask][dst] = lane as u32;
                    dst += 1;
                }
                lane += 1;
            }
            mask += 1;
        }
        lut
    }

    static AVX2_COMPACT: [[u32; 8]; 256] = avx2_compact_lut();

    /// 4-lane SSE2 block compare. SSE2 is baseline on x86_64, so this
    /// needs no feature gate; the only unsafety is the unaligned loads,
    /// which `_mm_loadu_si128` permits at any alignment.
    pub(super) fn sse_intersect(
        a_keys: &[u32],
        a_vals: &[u32],
        b_keys: &[u32],
        out: &mut Vec<u32>,
    ) {
        let (mut i, mut j) = (0usize, 0usize);
        let (an, bn) = (a_keys.len(), b_keys.len());
        while i + 4 <= an && j + 4 <= bn {
            // SAFETY: `i + 4 <= an` and `j + 4 <= bn` keep every 16-byte
            // unaligned load inside the slices.
            let mut mask = unsafe {
                let va = _mm_loadu_si128(a_keys.as_ptr().add(i) as *const __m128i);
                let vb = _mm_loadu_si128(b_keys.as_ptr().add(j) as *const __m128i);
                // Compare `va` against all 4 lane-rotations of `vb`:
                // every (a-lane, b-lane) pair is covered exactly once.
                let r0 = _mm_cmpeq_epi32(va, vb);
                let r1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b00_11_10_01));
                let r2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b01_00_11_10));
                let r3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b10_01_00_11));
                let hits = _mm_or_si128(_mm_or_si128(r0, r1), _mm_or_si128(r2, r3));
                _mm_movemask_ps(_mm_castsi128_ps(hits)) as u32
            };
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                out.push(a_vals[i + lane]);
                mask &= mask - 1;
            }
            let (amax, bmax) = (a_keys[i + 3], b_keys[j + 3]);
            if amax <= bmax {
                i += 4;
            }
            if bmax <= amax {
                j += 4;
            }
        }
        super::scalar_merge_keyed(a_keys, a_vals, b_keys, i, j, out);
    }

    /// 8-lane AVX2 block compare with shuffle-LUT payload compaction.
    ///
    /// # Safety
    ///
    /// The caller must have runtime-detected AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn avx2_intersect(
        a_keys: &[u32],
        a_vals: &[u32],
        b_keys: &[u32],
        out: &mut Vec<u32>,
    ) {
        let (mut i, mut j) = (0usize, 0usize);
        let (an, bn) = (a_keys.len(), b_keys.len());
        // Rotate-by-one lane permutation; applied cumulatively it walks
        // `vb` through all 7 non-identity rotations.
        let rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
        while i + 8 <= an && j + 8 <= bn {
            // SAFETY (for the unaligned loads/stores below): the loop
            // bound keeps both 32-byte loads inside the slices, and the
            // store target is a local [u32; 8].
            let va = _mm256_loadu_si256(a_keys.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b_keys.as_ptr().add(j) as *const __m256i);
            let mut hits = _mm256_cmpeq_epi32(va, vb);
            let mut vr = vb;
            for _ in 0..7 {
                vr = _mm256_permutevar8x32_epi32(vr, rot1);
                hits = _mm256_or_si256(hits, _mm256_cmpeq_epi32(va, vr));
            }
            let mask = _mm256_movemask_ps(_mm256_castsi256_ps(hits)) as usize;
            if mask != 0 {
                let vals = _mm256_loadu_si256(a_vals.as_ptr().add(i) as *const __m256i);
                let perm = _mm256_loadu_si256(AVX2_COMPACT[mask].as_ptr() as *const __m256i);
                let packed = _mm256_permutevar8x32_epi32(vals, perm);
                let mut buf = [0u32; 8];
                _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, packed);
                out.extend_from_slice(&buf[..mask.count_ones() as usize]);
            }
            let (amax, bmax) = (a_keys[i + 7], b_keys[j + 7]);
            if amax <= bmax {
                i += 8;
            }
            if bmax <= amax {
                j += 8;
            }
        }
        super::scalar_merge_keyed(a_keys, a_vals, b_keys, i, j, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: scalar merge over the full inputs.
    fn reference(a_keys: &[u32], a_vals: &[u32], b_keys: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        scalar_merge_keyed(a_keys, a_vals, b_keys, 0, 0, &mut out);
        out
    }

    fn available_kinds() -> Vec<KernelKind> {
        let mut kinds = vec![KernelKind::Scalar];
        for k in [KernelKind::Sse, KernelKind::Avx2] {
            if k <= detected_kernel() {
                kinds.push(k);
            }
        }
        kinds
    }

    fn check_all_kinds(a_keys: &[u32], b_keys: &[u32]) {
        // Payloads distinct from keys so a keys-for-payloads mixup fails.
        let a_vals: Vec<u32> = (0..a_keys.len() as u32).map(|i| i ^ 0x8000_0000).collect();
        let expect = reference(a_keys, &a_vals, b_keys);
        for kind in available_kinds() {
            let mut got = Vec::new();
            intersect_keyed_with(kind, a_keys, &a_vals, b_keys, &mut got);
            assert_eq!(got, expect, "kernel {kind:?} diverged");
        }
    }

    /// Deterministic xorshift so the sweep needs no external RNG.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn sorted_unique(seed: u64, len: usize, spread: u64) -> Vec<u32> {
        let mut state = seed | 1;
        let mut v: Vec<u32> = (0..len * 2)
            .map(|_| (xorshift(&mut state) % spread) as u32)
            .collect();
        v.sort_unstable();
        v.dedup();
        v.truncate(len);
        v
    }

    #[test]
    fn all_lengths_and_alignments_agree() {
        // Lengths 0..64 on both sides cross every lane-remainder class
        // of both the 4-lane and 8-lane paths, plus empty and singleton.
        for la in 0..64usize {
            for lb in (0..64usize).step_by(3) {
                let a = sorted_unique(la as u64 + 1, la, 140);
                let b = sorted_unique(lb as u64 + 7777, lb, 140);
                check_all_kinds(&a, &b);
            }
        }
    }

    #[test]
    fn dense_sparse_and_disjoint_agree() {
        let dense: Vec<u32> = (0..256).collect();
        let evens: Vec<u32> = (0..256).map(|x| x * 2).collect();
        let odds: Vec<u32> = (0..256).map(|x| x * 2 + 1).collect();
        check_all_kinds(&dense, &dense);
        check_all_kinds(&dense, &evens);
        check_all_kinds(&evens, &odds); // fully disjoint
        check_all_kinds(&evens, &dense);
        check_all_kinds(&[], &dense);
        check_all_kinds(&dense, &[]);
        check_all_kinds(&[7], &dense);
    }

    #[test]
    fn high_bit_keys_agree() {
        // Keys above i32::MAX: the SIMD equality compare is bitwise, but
        // this guards against any signed-compare regression.
        let a: Vec<u32> = (0..96).map(|x| u32::MAX - 3 * x).rev().collect();
        let b: Vec<u32> = (0..96).map(|x| u32::MAX - 2 * x).rev().collect();
        check_all_kinds(&a, &b);
    }

    #[test]
    fn block_boundary_runs_agree() {
        // Long equal runs that straddle block boundaries at every phase.
        for shift in 0..9u32 {
            let a: Vec<u32> = (0..80).collect();
            let b: Vec<u32> = (shift..80 + shift).collect();
            check_all_kinds(&a, &b);
        }
    }

    #[test]
    fn detection_is_stable_and_ordered() {
        let d = detected_kernel();
        assert_eq!(d, detected_kernel());
        assert!(d >= KernelKind::Scalar);
        set_simd_enabled(false);
        assert_eq!(active_kernel(), KernelKind::Scalar);
        set_simd_enabled(true);
        assert_eq!(active_kernel(), d);
        assert_eq!(KernelKind::Scalar.lanes(), 1);
        assert!(d.lanes() >= 1);
    }
}
