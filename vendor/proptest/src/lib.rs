//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the slice of proptest's API that the workspace's
//! property tests use: strategies (ranges, tuples, `Just`, `any`,
//! mapped/flat-mapped/weighted-union combinators, `collection::vec`),
//! the `proptest!` test macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` family. Cases are generated from a deterministic
//! per-test seed; failures report the generated inputs. There is **no
//! shrinking** — failing inputs are reported as drawn.

use std::fmt::Debug;

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Deterministic generator handed to strategies.
pub struct TestRng(rand::Xoshiro256PlusPlus);

impl TestRng {
    /// Creates the generator for one test case.
    pub fn new(seed: u64) -> Self {
        use rand::SeedableRng;
        TestRng(rand::Xoshiro256PlusPlus::seed_from_u64(seed))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a test case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An explicit assertion failure (`prop_assert*` or user-made).
    Fail(String),
    /// The case asked to be discarded (unused by this workspace but part
    /// of the upstream surface).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from any message-like value.
    pub fn fail<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection from any message-like value.
    pub fn reject<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// `Strategy` sources for arbitrary values of a type (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy producing arbitrary values of `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of arbitrary values of `T` (upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact size or a half-open
    /// range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng;
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The deterministic case runner behind the `proptest!` macro.
pub mod runner {
    use super::{ProptestConfig, Strategy, TestCaseError, TestRng};
    use std::fmt::Debug;
    use std::hash::{Hash, Hasher};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn base_seed(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = s.parse::<u64>() {
                return n;
            }
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        h.finish()
    }

    /// Runs `cases` deterministic cases of `property` over values drawn
    /// from `strategy`, panicking with the offending input on failure.
    pub fn run<S, F>(config: ProptestConfig, strategy: S, name: &str, property: F)
    where
        S: Strategy,
        S::Value: Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let cases = match std::env::var("PROPTEST_CASES") {
            Ok(s) => s.parse::<u32>().unwrap_or(config.cases),
            Err(_) => config.cases,
        };
        let seed = base_seed(name);
        for case in 0..cases as u64 {
            let mut rng = TestRng::new(seed.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:#?}");
            match catch_unwind(AssertUnwindSafe(|| property(value))) {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(msg))) => panic!(
                    "proptest property {name} failed at case {case}/{cases}: {msg}\ninput: {shown}"
                ),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .map(|s| s.as_str())
                        .or_else(|| panic.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!(
                        "proptest property {name} panicked at case {case}/{cases}: {msg}\ninput: {shown}"
                    )
                }
            }
        }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, ProptestConfig, TestCaseError};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: {:?}",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}\n  both: {:?}", format!($($fmt)*), l);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::runner::run(
                    config,
                    strategy,
                    concat!(module_path!(), "::", stringify!($name)),
                    |($($arg,)+)| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::ProptestConfig::default()) $($rest)*);
    };
}
