//! End-to-end demo of the catch → shrink → repro pipeline.
//!
//! A deliberate cover bug ([`CoverFault`]) is injected into the
//! differential runner's observation path; the test asserts the harness
//! catches it, delta-debugs the failing trace down to a near-minimal op
//! script (≤ 6 ops), and round-trips the resulting repro file through
//! JSON such that the replayed repro still fails.

use dynfd_core::DynFdConfig;
use dynfd_testkit::{
    check_trace, shrink_trace, CoverFault, Repro, RunnerOptions, Trace, TraceProfile,
};

fn demo_opts(fault: CoverFault) -> RunnerOptions {
    // One configuration keeps the demo fast; the fault perturbs the
    // observed cover identically under every configuration anyway.
    RunnerOptions::focused(DynFdConfig::default(), Some(fault))
}

#[test]
fn injected_cover_bug_is_caught_and_shrunk_to_a_tiny_repro() {
    let trace = Trace::generate(TraceProfile::ZipfSkewed, 71);
    assert!(
        trace.ops.len() > 6,
        "demo needs a non-trivial trace to shrink ({} ops)",
        trace.ops.len()
    );
    let opts = demo_opts(CoverFault::DropFirstFd);

    // 1. Caught: the differential runner reports the discrepancy.
    let failure = check_trace(&trace, &opts).expect_err("injected bug must be caught");
    assert!(
        failure.check.starts_with("oracle:") || failure.check.starts_with("metamorphic:"),
        "unexpected check kind: {}",
        failure.check
    );

    // 2. Shrunk: delta debugging minimizes the trace to ≤ 6 ops while
    //    preserving the failure.
    let shrunk = shrink_trace(&trace, |t| check_trace(t, &opts).is_err());
    assert!(
        shrunk.ops.len() <= 6,
        "shrunk trace still has {} ops",
        shrunk.ops.len()
    );
    let final_failure = check_trace(&shrunk, &opts).expect_err("shrunk trace still fails");

    // 3. Reproduced: the repro file round-trips through JSON and the
    //    parsed trace still triggers the same check.
    let repro = Repro::new(shrunk, &final_failure);
    let parsed = Repro::from_json(&repro.to_json()).expect("repro parses back");
    assert_eq!(parsed, repro);
    let replayed = check_trace(&parsed.trace, &opts).expect_err("replayed repro still fails");
    assert_eq!(replayed.check, final_failure.check);
}

#[test]
fn bogus_fd_fault_shrinks_too() {
    let trace = Trace::generate(TraceProfile::Uniform, 72);
    let opts = demo_opts(CoverFault::AddBogusFd);
    check_trace(&trace, &opts).expect_err("injected bug must be caught");
    let shrunk = shrink_trace(&trace, |t| check_trace(t, &opts).is_err());
    assert!(
        shrunk.ops.len() <= 6,
        "shrunk trace still has {} ops",
        shrunk.ops.len()
    );
}
