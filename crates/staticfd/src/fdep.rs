//! FDEP: row-based FD discovery [6].
//!
//! FDEP compares **all pairs of records**, computes each pair's agree
//! set, and accumulates the *negative cover*: for an agree set `X`,
//! every candidate `X -> y` with `y ∉ X` is witnessed invalid. The
//! maximal elements of this cover are then turned into the minimal FDs
//! by classic dependency induction (paper Section 7.1).
//!
//! The pair comparison is Θ(n²·m); FDEP is therefore the oracle of
//! choice for small relations and the row-based representative in the
//! algorithm comparison benches. DynFD inherits FDEP's negative-cover
//! idea but uses it to process deletions instead of deriving the
//! positive cover.

use dynfd_common::{AttrSet, RecordId};
use dynfd_lattice::{induce_from_negative_cover, FdTree};
use dynfd_relation::{agree_set, DynamicRelation};

/// Discovers all minimal, non-trivial FDs of `rel` by exhaustive pair
/// comparison and dependency induction.
pub fn discover(rel: &DynamicRelation) -> FdTree {
    if rel.len() < 2 {
        return crate::trivial_cover(rel);
    }
    let neg = negative_cover(rel);
    induce_from_negative_cover(&neg, rel.arity())
}

/// Computes the maximal negative cover of `rel` from all record pairs.
///
/// Agree sets are deduplicated before entering the cover — with `n`
/// records there are `n(n-1)/2` pairs but usually far fewer distinct
/// agree sets.
pub fn negative_cover(rel: &DynamicRelation) -> FdTree {
    let arity = rel.arity();
    let mut ids: Vec<RecordId> = rel.record_ids().collect();
    ids.sort_unstable();

    // Distinct agree sets, deduplicated via sort.
    let mut agrees: Vec<AttrSet> = Vec::new();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let x = agree_set(rel, a, b).expect("live records");
            if x.len() < arity {
                // A full agree set (duplicate records) witnesses nothing.
                agrees.push(x);
            }
        }
    }
    agrees.sort_unstable();
    agrees.dedup();
    // Keep only maximal agree sets: a non-maximal agree set's non-FDs
    // are all implied by the larger one... per RHS, so filter per RHS
    // inside the tree instead: add_maximal_evicting handles it.
    let mut neg = FdTree::new();
    // Process larger agree sets first so most smaller ones are rejected
    // by the cheap specialization check instead of evicting.
    agrees.sort_by_key(|x| std::cmp::Reverse(x.len()));
    for x in agrees {
        for y in 0..arity {
            if !x.contains(y) {
                neg.add_maximal_evicting(x, y);
            }
        }
    }
    neg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{paper_relation, random_relation, rel};
    use dynfd_common::Fd;

    fn s(attrs: &[usize]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    #[test]
    fn paper_example_negative_cover() {
        // The maximal non-FDs of Table 1 (initial): fzc→l, fl→z, fl→c,
        // c→f, c→z (Section 3.2).
        let neg = negative_cover(&paper_relation());
        let expect: FdTree = [
            (s(&[0, 2, 3]), 1),
            (s(&[0, 1]), 2),
            (s(&[0, 1]), 3),
            (s(&[3]), 0),
            (s(&[3]), 2),
        ]
        .into_iter()
        .map(|(l, r)| Fd::new(l, r))
        .collect();
        assert_eq!(neg, expect);
    }

    #[test]
    fn paper_example_positive_cover() {
        let fds = discover(&paper_relation());
        let expect: FdTree = [
            (s(&[1]), 0),
            (s(&[2]), 0),
            (s(&[2]), 3),
            (s(&[0, 3]), 2),
            (s(&[1, 3]), 2),
        ]
        .into_iter()
        .map(|(l, r)| Fd::new(l, r))
        .collect();
        assert_eq!(fds, expect);
    }

    #[test]
    fn duplicate_records_do_not_poison_the_cover() {
        let r = rel(&[&["a", "b"], &["a", "b"], &["a", "c"]]);
        let fds = discover(&r);
        // ∅ -> 0 holds (constant column); 0 -> 1 does not (b vs c).
        assert!(fds.contains(AttrSet::empty(), 0));
        assert!(!fds.contains_generalization(s(&[0]), 1));
    }

    #[test]
    fn agrees_with_tane_on_random_relations() {
        for seed in 0..8u64 {
            let r = random_relation(seed, 40, 5, 3);
            let a = discover(&r);
            let b = crate::tane::discover(&r);
            assert_eq!(a, b, "FDEP and TANE disagree on seed {seed}");
        }
    }

    #[test]
    fn tiny_relations() {
        assert_eq!(discover(&rel(&[])).len(), 2);
        assert_eq!(discover(&rel(&[&["x", "y", "z"]])).len(), 3);
        // Two identical records: still every FD holds.
        let twin = rel(&[&["x", "y"], &["x", "y"]]);
        let fds = discover(&twin);
        assert!(fds.contains(AttrSet::empty(), 0));
        assert!(fds.contains(AttrSet::empty(), 1));
    }
}
